//! The executor: a fixed-size worker pool with deterministic result
//! merging and an optional content-addressed result cache.
//!
//! Jobs in a batch execute out of submission order (workers pull from a
//! shared queue), but [`Executor::run_all`] returns outputs **in
//! submission order**, so callers observe output bit-for-bit identical to
//! a serial loop regardless of worker count.

use crate::cache::{CachePolicy, DiskCache};
use crate::key::CacheKey;
use cestim_obs::{Counter, Gauge, Histogram, Registry};
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// A pure, hashable description of one unit of simulation work.
///
/// A job must be a *value*: everything `execute` does is determined by
/// the description returned from [`Job::content`], so two jobs with equal
/// content (under the same [`Job::schema_salt`]) are interchangeable and
/// one's cached output can stand in for the other's execution.
pub trait Job: Sync {
    /// What executing the job produces. Must serialize losslessly — a
    /// cached output replayed from disk stands in for a fresh execution.
    type Output: Send + Serialize + Deserialize;

    /// The job's full configuration as a JSON value. Hashed canonically
    /// (object keys sorted), so field order never affects the key.
    fn content(&self) -> Value;

    /// Fingerprint of the code producing the output; bump it whenever
    /// output semantics change (see [`crate::schema_salt`]).
    fn schema_salt(&self) -> u64;

    /// Human-readable label stored alongside cached entries.
    fn label(&self) -> String;

    /// Runs the simulation unit.
    fn execute(&self) -> Self::Output;

    /// The content-addressed key this job's result is cached under.
    fn cache_key(&self) -> CacheKey {
        CacheKey::derive(self.schema_salt(), &self.content())
    }
}

/// Reads the worker count from `CESTIM_JOBS`, defaulting to the
/// machine's available parallelism (minimum 1).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("CESTIM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Serializable end-of-run summary of an [`Executor`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Configured worker count.
    pub workers: u64,
    /// Jobs submitted across all batches.
    pub submitted: u64,
    /// Jobs answered from the cache.
    pub cache_hits: u64,
    /// Jobs actually executed.
    pub executed: u64,
    /// Cache policy in effect (`read-write` / `refresh` / `disabled` /
    /// `none` when no cache directory is attached).
    pub cache_policy: String,
}

/// Executes batches of [`Job`]s on a fixed-size worker pool, merging
/// results back into submission order.
pub struct Executor {
    workers: usize,
    cache: Option<DiskCache>,
    policy: CachePolicy,
    registry: Registry,
    submitted: Counter,
    hits: Counter,
    executed: Counter,
    queue_depth: Gauge,
    job_nanos: Histogram,
}

impl Executor {
    /// A single-worker executor with no cache: the in-process sequential
    /// path libraries use when no parallelism was asked for.
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// An executor with `workers` threads (clamped to at least 1) and no
    /// cache, reporting into a fresh metrics registry.
    pub fn new(workers: usize) -> Executor {
        Executor::build(
            workers.max(1),
            None,
            CachePolicy::ReadWrite,
            Registry::new(),
        )
    }

    /// Attaches a disk cache rooted at `dir` with the given policy.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the cache directory.
    pub fn with_cache(self, dir: impl Into<PathBuf>, policy: CachePolicy) -> io::Result<Executor> {
        let cache = if policy == CachePolicy::Disabled {
            None
        } else {
            Some(DiskCache::open(dir)?)
        };
        Ok(Executor::build(self.workers, cache, policy, self.registry))
    }

    /// Reports telemetry into `registry` instead of the executor's own.
    pub fn with_registry(self, registry: &Registry) -> Executor {
        Executor::build(self.workers, self.cache, self.policy, registry.clone())
    }

    fn build(
        workers: usize,
        cache: Option<DiskCache>,
        policy: CachePolicy,
        registry: Registry,
    ) -> Executor {
        Executor {
            workers,
            cache,
            policy,
            submitted: registry.counter("exec.jobs.submitted", &[]),
            hits: registry.counter("exec.jobs.cache_hits", &[]),
            executed: registry.counter("exec.jobs.executed", &[]),
            queue_depth: registry.gauge("exec.queue.depth", &[]),
            job_nanos: registry.histogram("exec.job.nanos", &[]),
            registry,
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The registry this executor's telemetry lands in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the executor's counters.
    pub fn report(&self) -> ExecReport {
        ExecReport {
            workers: self.workers as u64,
            submitted: self.submitted.get(),
            cache_hits: self.hits.get(),
            executed: self.executed.get(),
            cache_policy: match (&self.cache, self.policy) {
                (None, _) => "none".to_string(),
                (Some(_), CachePolicy::ReadWrite) => "read-write".to_string(),
                (Some(_), CachePolicy::Refresh) => "refresh".to_string(),
                (Some(_), CachePolicy::Disabled) => "disabled".to_string(),
            },
        }
    }

    /// Sweeps cache entries written under a different schema salt.
    /// Returns the number removed (0 without a cache).
    pub fn evict_stale(&self, schema: u64) -> usize {
        self.cache
            .as_ref()
            .and_then(|c| c.evict_stale(schema).ok())
            .unwrap_or(0)
    }

    /// Runs a batch, returning outputs in submission order.
    ///
    /// Cache lookups happen up front on the calling thread; only misses
    /// are queued to the pool. With one worker (or one pending job) the
    /// batch runs inline without spawning threads.
    pub fn run_all<J: Job>(&self, jobs: &[J]) -> Vec<J::Output> {
        self.submitted.add(jobs.len() as u64);
        let mut slots: Vec<Option<J::Output>> = jobs.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let hit = if self.policy.reads() {
                self.cache
                    .as_ref()
                    .and_then(|c| c.load::<J::Output>(&job.cache_key()))
            } else {
                None
            };
            match hit {
                Some(out) => {
                    self.hits.inc();
                    slots[i] = Some(out);
                }
                None => pending.push(i),
            }
        }

        self.queue_depth.set(pending.len() as i64);
        if self.workers <= 1 || pending.len() <= 1 {
            for &i in &pending {
                slots[i] = Some(self.execute_one(&jobs[i]));
                self.queue_depth.add(-1);
            }
        } else {
            let queue = Mutex::new(VecDeque::from(pending));
            let workers = self.workers.min(queue.lock().expect("queue lock").len());
            let (tx, rx) = mpsc::channel::<(usize, J::Output)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let queue = &queue;
                    scope.spawn(move || loop {
                        let next = queue.lock().expect("queue lock").pop_front();
                        let Some(i) = next else { break };
                        self.queue_depth.add(-1);
                        let out = self.execute_one(&jobs[i]);
                        if tx.send((i, out)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, out) in rx {
                    slots[i] = Some(out);
                }
            });
        }
        self.queue_depth.set(0);

        slots
            .into_iter()
            .map(|s| s.expect("every job yields exactly one output"))
            .collect()
    }

    fn execute_one<J: Job>(&self, job: &J) -> J::Output {
        let start = Instant::now();
        let out = job.execute();
        self.job_nanos.record(start.elapsed().as_nanos() as u64);
        self.executed.inc();
        if self.policy.writes() {
            if let Some(cache) = &self.cache {
                // A failed cache write costs a future re-execution, not
                // correctness; don't fail the batch over it.
                let _ = cache.store(&job.cache_key(), &job.label(), &out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Map;

    struct Collatz {
        seed: u64,
    }

    impl Job for Collatz {
        type Output = Vec<u64>;

        fn content(&self) -> Value {
            let mut m = Map::new();
            m.insert("seed".into(), Value::Number(self.seed.into()));
            Value::Object(m)
        }

        fn schema_salt(&self) -> u64 {
            crate::schema_salt("test", 1)
        }

        fn label(&self) -> String {
            format!("collatz-{}", self.seed)
        }

        fn execute(&self) -> Vec<u64> {
            let mut v = vec![self.seed];
            let mut n = self.seed;
            while n > 1 && v.len() < 256 {
                n = if n.is_multiple_of(2) {
                    n / 2
                } else {
                    3 * n + 1
                };
                v.push(n);
            }
            v
        }
    }

    fn batch(n: u64) -> Vec<Collatz> {
        (1..=n).map(|seed| Collatz { seed }).collect()
    }

    #[test]
    fn parallel_results_match_serial_in_submission_order() {
        let jobs = batch(64);
        let serial = Executor::sequential().run_all(&jobs);
        let parallel = Executor::new(4).run_all(&jobs);
        assert_eq!(serial, parallel);
        assert_eq!(serial[0], vec![1]);
        assert_eq!(serial[2], vec![3, 10, 5, 16, 8, 4, 2, 1]);
    }

    #[test]
    fn warm_cache_answers_without_executing() {
        let dir = std::env::temp_dir().join(format!("cestim-exec-pool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = batch(8);

        let cold = Executor::new(2)
            .with_cache(&dir, CachePolicy::ReadWrite)
            .unwrap();
        let first = cold.run_all(&jobs);
        assert_eq!(cold.report().executed, 8);
        assert_eq!(cold.report().cache_hits, 0);

        let warm = Executor::new(2)
            .with_cache(&dir, CachePolicy::ReadWrite)
            .unwrap();
        let second = warm.run_all(&jobs);
        assert_eq!(first, second);
        assert_eq!(warm.report().executed, 0);
        assert_eq!(warm.report().cache_hits, 8);

        // Refresh ignores the entries but rewrites them.
        let refresh = Executor::new(2)
            .with_cache(&dir, CachePolicy::Refresh)
            .unwrap();
        assert_eq!(refresh.run_all(&jobs), first);
        assert_eq!(refresh.report().executed, 8);
        assert_eq!(refresh.report().cache_hits, 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_counts_and_policy_names() {
        let exec = Executor::new(3);
        exec.run_all(&batch(5));
        let r = exec.report();
        assert_eq!(r.workers, 3);
        assert_eq!(r.submitted, 5);
        assert_eq!(r.executed, 5);
        assert_eq!(r.cache_policy, "none");
        // Telemetry flowed into the registry too.
        let snap = exec.registry().snapshot();
        assert_eq!(snap.counter_value("exec.jobs.submitted"), Some(5));
        assert_eq!(snap.counter_value("exec.jobs.executed"), Some(5));
    }
}
