//! Golden snapshot of the Perfetto export for a 2-job chaos run.
//!
//! A sequential executor with `panic:2` + one retry produces a fully
//! deterministic span tree (ids are assigned in program order on one
//! thread). Wall-clock quantities — timestamps and the key-derived
//! backoff — are normalised before rendering, so the golden file pins the
//! *structure*: names, parent links, labels, thread tags, and the exact
//! Chrome `trace_event` JSON shape.
//!
//! Regenerate after an intentional format change with:
//! `CESTIM_BLESS=1 cargo test -p cestim-exec --test golden_trace`

use cestim_exec::{Executor, FaultPlan, Job, RetryPolicy};
use cestim_obs::export::render_perfetto;
use cestim_obs::span2::{SpanCollector, SpanRecord};
use serde_json::Value;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chaos_trace.json");

struct SquareJob(u64);

impl Job for SquareJob {
    type Output = u64;

    fn content(&self) -> Value {
        serde_json::json!({ "square": self.0 })
    }

    fn schema_salt(&self) -> u64 {
        1
    }

    fn label(&self) -> String {
        format!("square-{}", self.0)
    }

    fn execute(&self) -> u64 {
        self.0 * self.0
    }
}

/// Replaces wall-clock data with synthetic id-derived intervals: a child
/// (always a larger id than its parent) starts later and ends earlier, so
/// interval containment survives normalisation while every byte of the
/// render becomes run-independent.
fn normalise(mut records: Vec<SpanRecord>) -> Vec<SpanRecord> {
    let max_id = records.iter().map(|r| r.id.0).max().unwrap_or(0);
    for r in &mut records {
        r.start_nanos = r.id.0 * 1_000;
        r.end_nanos = (max_id + 1) * 1_000 - r.start_nanos / 2;
    }
    for r in &mut records {
        for (k, v) in &mut r.labels {
            if k == "backoff_ms" {
                *v = "<backoff>".into();
            }
        }
    }
    records
}

#[test]
fn chaos_trace_matches_golden_snapshot() {
    let spans = SpanCollector::new();
    let exec = Executor::sequential()
        .with_fault_plan(FaultPlan::parse("panic:2").unwrap())
        .with_retry(RetryPolicy {
            max_attempts: 2,
            base_ms: 1,
            max_ms: 1,
        })
        .with_spans(&spans);
    let out = exec.run_all(&[SquareJob(3), SquareJob(5)]);
    assert_eq!(out, vec![9, 25]);

    let rendered = render_perfetto(&normalise(spans.drain()));

    if std::env::var_os("CESTIM_BLESS").is_some() {
        std::fs::write(GOLDEN, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing - regenerate with CESTIM_BLESS=1");
    assert_eq!(
        rendered, golden,
        "perfetto export drifted from tests/golden/chaos_trace.json; \
         if intentional, regenerate with CESTIM_BLESS=1"
    );

    // Belt and braces: the golden itself must stay valid JSON containing
    // the chaos narrative (failed injected attempt, then a successful
    // retry, on the second submitted job).
    let doc: Value = serde_json::from_str(&golden).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let attempts: Vec<&Value> = events
        .iter()
        .filter(|e| e["name"] == "exec.attempt")
        .collect();
    assert_eq!(attempts.len(), 3, "two jobs, one retried");
    let panicked: Vec<&Value> = attempts
        .iter()
        .copied()
        .filter(|a| a["args"]["outcome"] == "panicked")
        .collect();
    assert_eq!(panicked.len(), 1);
    assert_eq!(panicked[0]["args"]["injected"], "true");
    assert_eq!(panicked[0]["args"]["attempt"], "1");
}
