//! Fault-isolation, retry, timeout, chaos-injection, and journal-resume
//! coverage for the executor (ISSUE 4 satellite: pool edge cases).

use cestim_exec::{
    install_quiet_panic_hook, BatchFailure, CachePolicy, Executor, FaultPlan, Job, JobErrorKind,
    RetryPolicy, RunJournal,
};
use serde::{Map, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cestim-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A job that squares its seed, panicking when `boom` is set.
struct Square {
    seed: u64,
    boom: bool,
}

impl Square {
    fn batch(n: u64) -> Vec<Square> {
        (1..=n).map(|seed| Square { seed, boom: false }).collect()
    }

    fn batch_with_bombs(n: u64, bombs: &[u64]) -> Vec<Square> {
        (1..=n)
            .map(|seed| Square {
                seed,
                boom: bombs.contains(&seed),
            })
            .collect()
    }
}

impl Job for Square {
    type Output = u64;

    fn content(&self) -> Value {
        let mut m = Map::new();
        m.insert("seed".into(), Value::Number(self.seed.into()));
        Value::Object(m)
    }

    fn schema_salt(&self) -> u64 {
        cestim_exec::schema_salt("resilience-test", 1)
    }

    fn label(&self) -> String {
        format!("square-{}", self.seed)
    }

    fn execute(&self) -> u64 {
        if self.boom {
            panic!("boom at seed {}", self.seed);
        }
        self.seed * self.seed
    }
}

/// Panics on its first `fail_attempts` executions, then succeeds.
struct Flaky {
    seed: u64,
    fail_attempts: u32,
    calls: AtomicU32,
}

impl Job for Flaky {
    type Output = u64;

    fn content(&self) -> Value {
        let mut m = Map::new();
        m.insert("seed".into(), Value::Number(self.seed.into()));
        Value::Object(m)
    }

    fn schema_salt(&self) -> u64 {
        cestim_exec::schema_salt("resilience-flaky", 1)
    }

    fn label(&self) -> String {
        format!("flaky-{}", self.seed)
    }

    fn execute(&self) -> u64 {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        if call < self.fail_attempts {
            panic!("transient failure {call} for seed {}", self.seed);
        }
        self.seed + 100
    }
}

#[test]
fn zero_jobs_is_an_empty_batch() {
    let exec = Executor::new(4);
    let out = exec.run_all_checked(&Square::batch(0));
    assert!(out.is_empty());
    assert_eq!(exec.report().submitted, 0);
    let out = exec.run_all(&Square::batch(0));
    assert!(out.is_empty());
}

#[test]
fn one_panicking_job_mid_queue_is_isolated() {
    install_quiet_panic_hook();
    // More jobs than workers, bomb in the middle of the queue.
    let jobs = Square::batch_with_bombs(12, &[7]);
    let exec = Executor::new(3);
    let results = exec.run_all_checked(&jobs);
    assert_eq!(results.len(), 12);
    for (i, r) in results.iter().enumerate() {
        let seed = i as u64 + 1;
        if seed == 7 {
            let e = r.as_ref().unwrap_err();
            assert_eq!(e.kind, JobErrorKind::Panicked);
            assert_eq!(e.label, "square-7");
            assert_eq!(e.attempts, 1);
            assert!(e.message.contains("boom at seed 7"), "{}", e.message);
            assert_eq!(e.key.len(), 32, "cache-key provenance travels along");
        } else {
            assert_eq!(r.as_ref().unwrap(), &(seed * seed));
        }
    }
    assert_eq!(exec.report().panics_caught, 1);
}

#[test]
fn all_jobs_panicking_still_returns_every_slot() {
    install_quiet_panic_hook();
    let jobs = Square::batch_with_bombs(6, &[1, 2, 3, 4, 5, 6]);
    let exec = Executor::new(2);
    let results = exec.run_all_checked(&jobs);
    assert_eq!(results.len(), 6);
    assert!(results.iter().all(|r| r.is_err()));
    assert_eq!(exec.report().panics_caught, 6);
}

#[test]
fn run_all_panics_with_a_structured_batch_failure() {
    install_quiet_panic_hook();
    let jobs = Square::batch_with_bombs(5, &[2, 4]);
    let exec = Executor::new(2);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exec.run_all(&jobs)))
        .expect_err("batch with failures must not return normally");
    let failure = payload
        .downcast_ref::<BatchFailure>()
        .expect("payload is a BatchFailure");
    assert_eq!(failure.total, 5);
    assert_eq!(failure.errors.len(), 2);
    // Submission order is preserved in the error list.
    assert_eq!(failure.errors[0].label, "square-2");
    assert_eq!(failure.errors[1].label, "square-4");
    assert!(failure.to_string().contains("2/5 jobs failed"));
}

#[test]
fn retry_until_success_counts_attempts() {
    install_quiet_panic_hook();
    let jobs: Vec<Flaky> = (1..=4)
        .map(|seed| Flaky {
            seed,
            fail_attempts: if seed == 3 { 2 } else { 0 },
            calls: AtomicU32::new(0),
        })
        .collect();
    let exec = Executor::new(2).with_retry(RetryPolicy {
        max_attempts: 3,
        base_ms: 1,
        max_ms: 5,
    });
    let results = exec.run_all_checked(&jobs);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(*results[2].as_ref().unwrap(), 103);
    assert_eq!(
        jobs[2].calls.load(Ordering::SeqCst),
        3,
        "2 failures + 1 success"
    );
    assert_eq!(jobs[0].calls.load(Ordering::SeqCst), 1);
    let report = exec.report();
    assert_eq!(report.retries, 2);
    assert_eq!(report.panics_caught, 2);
    // The attempt histogram saw the 3-attempt job.
    let snap = exec.registry().snapshot();
    match snap.get("exec.job.attempts") {
        Some(cestim_obs::MetricValue::Histogram(h)) => {
            assert_eq!(h.count, 4);
            assert_eq!(h.sum, 1 + 1 + 3 + 1);
        }
        other => panic!("missing attempts histogram: {other:?}"),
    }
}

#[test]
fn exhausted_retries_surface_the_final_error() {
    install_quiet_panic_hook();
    let jobs = vec![Flaky {
        seed: 9,
        fail_attempts: u32::MAX,
        calls: AtomicU32::new(0),
    }];
    let exec = Executor::sequential().with_retry(RetryPolicy {
        max_attempts: 3,
        base_ms: 1,
        max_ms: 2,
    });
    let results = exec.run_all_checked(&jobs);
    let e = results[0].as_ref().unwrap_err();
    assert_eq!(e.kind, JobErrorKind::Panicked);
    assert_eq!(e.attempts, 3);
    assert_eq!(jobs[0].calls.load(Ordering::SeqCst), 3);
    assert_eq!(exec.report().retries, 2);
}

#[test]
fn injected_panics_fire_deterministically_and_converge_under_retry() {
    install_quiet_panic_hook();
    let jobs = Square::batch(10);
    let clean: Vec<u64> = Executor::sequential().run_all(&jobs);

    // Without retries every 3rd submitted job fails...
    let chaotic = Executor::new(4).with_fault_plan(FaultPlan::parse("panic:3").unwrap());
    let results = chaotic.run_all_checked(&jobs);
    let failed: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    assert_eq!(failed, vec![2, 5, 8]);
    for i in [0usize, 1, 3, 4, 6, 7, 9] {
        assert_eq!(results[i].as_ref().unwrap(), &clean[i], "isolation");
    }
    let err = results[2].as_ref().unwrap_err();
    assert!(err.message.contains("injected fault"), "{}", err.message);

    // ...and with one retry the faults are transient: byte-identical output.
    let retried = Executor::new(4)
        .with_fault_plan(FaultPlan::parse("panic:3").unwrap())
        .with_retry(RetryPolicy {
            max_attempts: 2,
            base_ms: 1,
            max_ms: 5,
        });
    let healed = retried.run_all(&jobs);
    assert_eq!(healed, clean);
    assert_eq!(retried.report().retries, 3);
    assert_eq!(retried.report().panics_caught, 3);
}

#[test]
fn slow_jobs_past_the_deadline_time_out_in_both_paths() {
    install_quiet_panic_hook();
    // Parallel path: watchdog flags the slow job, survivors drain the rest.
    let jobs = Square::batch(6);
    let exec = Executor::new(3)
        .with_fault_plan(FaultPlan::parse("slow:4:300").unwrap())
        .with_deadline(Some(Duration::from_millis(40)));
    let results = exec.run_all_checked(&jobs);
    let e = results[3].as_ref().unwrap_err();
    assert_eq!(e.kind, JobErrorKind::TimedOut);
    for i in [0usize, 1, 2, 4, 5] {
        assert!(results[i].is_ok(), "survivors complete");
    }
    assert_eq!(exec.report().timeouts, 1);

    // Inline path: post-hoc deadline check, same structured outcome.
    let exec = Executor::sequential()
        .with_fault_plan(FaultPlan::parse("slow:2:120").unwrap())
        .with_deadline(Some(Duration::from_millis(30)));
    let results = exec.run_all_checked(&Square::batch(2));
    assert!(results[0].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err().kind,
        JobErrorKind::TimedOut
    );
    assert_eq!(exec.report().timeouts, 1);
}

/// A cancellation-aware busy loop (seed 0) modelled on the simulator
/// hot loop: polls the ambient cancel token every `check_every`
/// iterations and abandons itself once overdue. Other seeds return
/// immediately.
struct Spin {
    seed: u64,
}

impl Job for Spin {
    type Output = u64;

    fn content(&self) -> Value {
        let mut m = Map::new();
        m.insert("seed".into(), Value::Number(self.seed.into()));
        Value::Object(m)
    }

    fn schema_salt(&self) -> u64 {
        cestim_exec::schema_salt("resilience-spin", 1)
    }

    fn label(&self) -> String {
        format!("spin-{}", self.seed)
    }

    fn execute(&self) -> u64 {
        if self.seed == 0 {
            let token = cestim_obs::cancel::current();
            let safety = std::time::Instant::now();
            let mut i = 0u64;
            loop {
                i = i.wrapping_add(1);
                if let Some(t) = token {
                    if i.is_multiple_of(t.check_every) && t.expired() {
                        cestim_obs::cancel::fire();
                    }
                }
                // Safety valve so a regression fails the test instead of
                // hanging it.
                if i.is_multiple_of(1 << 22) && safety.elapsed() > Duration::from_secs(20) {
                    return u64::MAX;
                }
            }
        }
        self.seed
    }
}

#[test]
fn cooperative_cancel_releases_the_worker() {
    install_quiet_panic_hook();
    let jobs: Vec<Spin> = (0..4).map(|seed| Spin { seed }).collect();
    let exec = Executor::new(2)
        .with_deadline(Some(Duration::from_millis(40)))
        .with_cancel_every(1 << 12);
    let start = std::time::Instant::now();
    let results = exec.run_all_checked(&jobs);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "cancelled job released its worker instead of spinning forever"
    );
    let e = results[0].as_ref().unwrap_err();
    assert_eq!(e.kind, JobErrorKind::TimedOut);
    assert_eq!(e.attempts, 1, "a cancelled attempt is never retried");
    for (i, r) in results.iter().enumerate().skip(1) {
        assert_eq!(r.as_ref().unwrap(), &(i as u64), "survivors complete");
    }
    let report = exec.report();
    assert_eq!(report.timeouts, 1);
    assert_eq!(
        report.panics_caught, 0,
        "a cancel is a timeout, not a crash"
    );
    assert_eq!(report.retries, 0);
}

#[test]
fn timed_out_results_are_not_cached() {
    install_quiet_panic_hook();
    let dir = tmp_dir("timeout-cache");
    let exec = Executor::sequential()
        .with_cache(&dir, CachePolicy::ReadWrite)
        .unwrap()
        .with_fault_plan(FaultPlan::parse("slow:1:120").unwrap())
        .with_deadline(Some(Duration::from_millis(30)));
    let results = exec.run_all_checked(&Square::batch(1));
    assert_eq!(
        results[0].as_ref().unwrap_err().kind,
        JobErrorKind::TimedOut
    );
    // A rerun without the deadline must re-execute, not read a cached
    // value from the overdue attempt.
    let exec2 = Executor::sequential()
        .with_cache(&dir, CachePolicy::ReadWrite)
        .unwrap();
    let results = exec2.run_all_checked(&Square::batch(1));
    assert_eq!(results[0].as_ref().unwrap(), &1);
    assert_eq!(exec2.report().cache_hits, 0);
    assert_eq!(exec2.report().executed, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_store_failures_are_counted_not_fatal() {
    let dir = tmp_dir("store-fail");
    let exec = Executor::sequential()
        .with_cache(&dir, CachePolicy::ReadWrite)
        .unwrap();
    // Pull the directory out from under the cache: every store now fails
    // with ENOENT (works even as root, unlike permission bits).
    std::fs::remove_dir_all(&dir).unwrap();
    let out = exec.run_all(&Square::batch(4));
    assert_eq!(out, vec![1, 4, 9, 16], "results unaffected");
    assert_eq!(exec.report().cache_store_errors, 4);
    let snap = exec.registry().snapshot();
    assert_eq!(snap.counter_value("exec.cache.store_errors"), Some(4));
}

#[test]
fn io_faults_skip_the_cache_and_count_store_errors() {
    let dir = tmp_dir("io-fault");
    let jobs = Square::batch(4);
    // Warm the cache fault-free.
    let warm = Executor::sequential()
        .with_cache(&dir, CachePolicy::ReadWrite)
        .unwrap();
    warm.run_all(&jobs);

    // Every 2nd job's cache I/O "fails": reads miss, writes are dropped.
    let exec = Executor::sequential()
        .with_cache(&dir, CachePolicy::ReadWrite)
        .unwrap()
        .with_fault_plan(FaultPlan::parse("io:2").unwrap());
    let out = exec.run_all(&jobs);
    assert_eq!(out, vec![1, 4, 9, 16]);
    let report = exec.report();
    assert_eq!(report.cache_hits, 2, "odd seqs still hit");
    assert_eq!(report.executed, 2, "even seqs re-execute");
    assert_eq!(report.cache_store_errors, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn journal_resume_skips_completed_jobs() {
    let cache_dir = tmp_dir("resume-cache");
    let journal_dir = tmp_dir("resume-journal");
    let all = Square::batch(8);

    // First run "dies" after completing only the first half of the suite.
    {
        let journal = Arc::new(RunJournal::start(&journal_dir).unwrap());
        let exec = Executor::new(2)
            .with_cache(&cache_dir, CachePolicy::ReadWrite)
            .unwrap()
            .with_journal(journal);
        let out = exec.run_all(&all[..4]);
        assert_eq!(out, vec![1, 4, 9, 16]);
        // Executor dropped here: simulated kill before the second half.
    }

    // Resumed run replays the journal: the first half is answered from
    // cache and counted as resumed, only the second half executes.
    let journal = Arc::new(RunJournal::resume(&journal_dir).unwrap());
    assert_eq!(journal.prior_job_count(), 4);
    let exec = Executor::new(2)
        .with_cache(&cache_dir, CachePolicy::ReadWrite)
        .unwrap()
        .with_journal(journal);
    let out = exec.run_all(&all);
    assert_eq!(out, vec![1, 4, 9, 16, 25, 36, 49, 64]);
    let report = exec.report();
    assert_eq!(report.cache_hits, 4);
    assert_eq!(report.jobs_resumed, 4);
    assert_eq!(report.executed, 4);
    let snap = exec.registry().snapshot();
    assert_eq!(snap.counter_value("exec.jobs_resumed"), Some(4));

    std::fs::remove_dir_all(&cache_dir).unwrap();
    std::fs::remove_dir_all(&journal_dir).unwrap();
}

#[test]
fn poisoned_queue_locks_recover() {
    install_quiet_panic_hook();
    // A panicking job unwinds through the worker loop while other jobs
    // still hold queue turns; the batch must still produce every slot.
    // (Lock poisoning itself is exercised indirectly: worker panics are
    // caught *inside* the job, so the queue mutex is never poisoned by a
    // job body — this guards the recovery path stays compiled in.)
    let jobs = Square::batch_with_bombs(20, &[3, 11, 17]);
    let exec = Executor::new(4);
    let results = exec.run_all_checked(&jobs);
    assert_eq!(results.len(), 20);
    assert_eq!(results.iter().filter(|r| r.is_err()).count(), 3);
}
