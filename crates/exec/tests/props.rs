//! Property tests for job-key hashing: keys must be independent of field
//! insertion order, survive a serialize → parse → re-serialize round
//! trip, and separate differing configurations.

use cestim_exec::{canonical_string, content_hash, schema_salt, CacheKey};
use proptest::prelude::*;
use serde::{Map, Value};

/// Builds a job-description-shaped object from generated fields, with
/// insertion order chosen by `order`.
fn description(workload: u64, scale: u64, salt: u64, label: &str, order: u64) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![
        ("workload", Value::Number(workload.into())),
        ("scale", Value::Number(scale.into())),
        ("input_salt", Value::Number(salt.into())),
        ("label", Value::String(label.to_string())),
        ("nested", {
            let mut inner = Map::new();
            inner.insert("enhanced".into(), Value::Bool(salt.is_multiple_of(2)));
            inner.insert("threshold".into(), Value::Number(scale.into()));
            Value::Object(inner)
        }),
    ];
    // Rotate the insertion order: equal content, permuted fields.
    let rot = (order as usize) % fields.len();
    fields.rotate_left(rot);
    let mut m = Map::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

proptest! {
    #[test]
    fn keys_ignore_field_insertion_order(
        workload in 0u64..8,
        scale in 1u64..100,
        salt in 0u64..1000,
        order_a in 0u64..5,
        order_b in 0u64..5,
    ) {
        let a = description(workload, scale, salt, "job", order_a);
        let b = description(workload, scale, salt, "job", order_b);
        prop_assert_eq!(content_hash(&a), content_hash(&b));
        prop_assert_eq!(canonical_string(&a), canonical_string(&b));
    }

    #[test]
    fn keys_survive_reserialization(
        workload in 0u64..8,
        scale in 1u64..100,
        salt in 0u64..1000,
    ) {
        let original = description(workload, scale, salt, "job", 0);
        // Render → parse → hash again: the digest must not move.
        let text = original.to_string();
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(content_hash(&original), content_hash(&reparsed));
        // And the same through the pretty renderer.
        let mut pretty = String::new();
        original.write_pretty(&mut pretty, 0);
        let reparsed: Value = serde_json::from_str(&pretty).unwrap();
        prop_assert_eq!(content_hash(&original), content_hash(&reparsed));
    }

    #[test]
    fn differing_configs_get_differing_keys(
        workload in 0u64..8,
        scale in 1u64..100,
        salt in 0u64..1000,
    ) {
        let base = description(workload, scale, salt, "job", 0);
        let bumped_scale = description(workload, scale + 1, salt, "job", 0);
        let bumped_salt = description(workload, scale, salt + 1, "job", 0);
        prop_assert_ne!(content_hash(&base), content_hash(&bumped_scale));
        prop_assert_ne!(content_hash(&base), content_hash(&bumped_salt));
    }

    #[test]
    fn schema_salts_partition_keys(
        counter in 0u32..1000,
        workload in 0u64..8,
    ) {
        let content = description(workload, 1, 0, "job", 0);
        let old = CacheKey::derive(schema_salt("0.1.0", counter), &content);
        let new = CacheKey::derive(schema_salt("0.1.0", counter + 1), &content);
        prop_assert_eq!(old.content, new.content);
        prop_assert_ne!(old.schema, new.schema);
        prop_assert_ne!(old.file_name(), new.file_name());
    }
}
