//! One Criterion bench per paper table/figure.
//!
//! These time the *regeneration* of each experiment on a two-workload
//! subset at scale 1 (the full 8-workload regeneration is the `repro`
//! binary). Every table and figure of the paper has a timed entry here, so
//! `cargo bench -p cestim-bench --bench tables` both exercises and times
//! the complete reproduction pipeline.

use cestim_sim::{suite, PredictorKind};
use cestim_workloads::WorkloadKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const W: &[WorkloadKind] = &[WorkloadKind::Compress, WorkloadKind::Gcc];
const SCALE: u32 = 1;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig1", |b| b.iter(|| black_box(suite::fig1())));
    g.bench_function("table1", |b| {
        b.iter(|| black_box(suite::table1_with(SCALE, W)))
    });
    g.bench_function("table2", |b| {
        b.iter(|| black_box(suite::table2_with(SCALE, W)))
    });
    g.bench_function("fig3", |b| b.iter(|| black_box(suite::fig3_with(SCALE, W))));
    g.bench_function("fig4", |b| {
        b.iter(|| black_box(suite::fig45_with(SCALE, W, PredictorKind::Gshare, "fig4")))
    });
    g.bench_function("fig5", |b| {
        b.iter(|| {
            black_box(suite::fig45_with(
                SCALE,
                W,
                PredictorKind::McFarling,
                "fig5",
            ))
        })
    });
    g.bench_function("table3", |b| {
        b.iter(|| black_box(suite::table3_with(SCALE, W)))
    });
    g.bench_function("fig6", |b| {
        b.iter(|| {
            black_box(suite::distance_fig_with(
                SCALE,
                W,
                PredictorKind::Gshare,
                false,
                "fig6",
            ))
        })
    });
    g.bench_function("fig7", |b| {
        b.iter(|| {
            black_box(suite::distance_fig_with(
                SCALE,
                W,
                PredictorKind::McFarling,
                false,
                "fig7",
            ))
        })
    });
    g.bench_function("fig8", |b| {
        b.iter(|| {
            black_box(suite::distance_fig_with(
                SCALE,
                W,
                PredictorKind::Gshare,
                true,
                "fig8",
            ))
        })
    });
    g.bench_function("fig9", |b| {
        b.iter(|| {
            black_box(suite::distance_fig_with(
                SCALE,
                W,
                PredictorKind::McFarling,
                true,
                "fig9",
            ))
        })
    });
    g.bench_function("table4", |b| {
        b.iter(|| black_box(suite::table4_with(SCALE, W)))
    });
    g.bench_function("cluster", |b| {
        b.iter(|| black_box(suite::cluster_with(SCALE, W)))
    });
    g.bench_function("boost", |b| {
        b.iter(|| black_box(suite::boost_with(SCALE, W)))
    });
    g.bench_function("table2-detail", |b| {
        b.iter(|| black_box(suite::table2_detail_with(SCALE, W)))
    });
    g.bench_function("ext-jrsmcf", |b| {
        b.iter(|| black_box(suite::ext_jrsmcf_with(SCALE, W)))
    });
    g.bench_function("ext-cir", |b| {
        b.iter(|| black_box(suite::ext_cir_with(SCALE, W)))
    });
    g.bench_function("ext-tune", |b| {
        b.iter(|| black_box(suite::ext_tune_with(SCALE, W)))
    });
    g.bench_function("ext-eager", |b| {
        b.iter(|| black_box(suite::ext_eager_with(SCALE, W)))
    });
    g.bench_function("ext-xinput", |b| {
        b.iter(|| black_box(suite::ext_xinput_with(SCALE, W)))
    });
    g.bench_function("ext-smt", |b| {
        b.iter(|| {
            black_box(suite::ext_smt_with(
                SCALE,
                &[(WorkloadKind::Compress, WorkloadKind::Gcc)],
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
