//! Pipeline-simulator throughput and design-choice ablations.

use cestim_bpred::Gshare;
use cestim_core::{Jrs, PatternHistory, SaturatingConfidence, StaticProfile};
use cestim_pipeline::{PipelineConfig, Simulator};
use cestim_workloads::WorkloadKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn run(workload: WorkloadKind, cfg: PipelineConfig, estimators: usize) -> u64 {
    let w = workload.build(1);
    let mut sim = Simulator::new(&w.program, cfg, Box::new(Gshare::new(12)));
    for i in 0..estimators {
        match i % 4 {
            0 => sim.add_estimator(Box::new(Jrs::paper_enhanced())),
            1 => sim.add_estimator(Box::new(SaturatingConfidence::selected())),
            2 => sim.add_estimator(Box::new(PatternHistory::new(12))),
            _ => sim.add_estimator(Box::new(StaticProfile::from_confident_pcs([], 0.9))),
        };
    }
    sim.run_to_completion().fetched_insts
}

fn bench_workload_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_throughput");
    g.sample_size(10);
    for w in [
        WorkloadKind::Compress,
        WorkloadKind::Go,
        WorkloadKind::Ijpeg,
    ] {
        let insts = run(w, PipelineConfig::paper(), 0);
        g.throughput(Throughput::Elements(insts));
        g.bench_with_input(BenchmarkId::new("gshare", w.name()), &w, |b, &w| {
            b.iter(|| black_box(run(w, PipelineConfig::paper(), 0)))
        });
    }
    g.finish();
}

/// Ablation: cost of attaching estimator banks to the pipeline.
fn bench_estimator_bank(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_estimator_bank");
    g.sample_size(10);
    for n in [0usize, 1, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(run(WorkloadKind::Compress, PipelineConfig::paper(), n)))
        });
    }
    g.finish();
}

/// Ablation: pipeline gating on/off (speculation control overhead/benefit).
fn bench_gating(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_gating");
    g.sample_size(10);
    g.bench_function("ungated", |b| {
        b.iter(|| black_box(run(WorkloadKind::Go, PipelineConfig::paper(), 1)))
    });
    g.bench_function("gate_2", |b| {
        b.iter(|| {
            black_box(run(
                WorkloadKind::Go,
                PipelineConfig::paper().with_gating(2),
                1,
            ))
        })
    });
    g.finish();
}

/// Ablation: SMT fetch-arbitration policies on a two-thread front end.
fn bench_smt_policies(c: &mut Criterion) {
    use cestim_pipeline::{FetchPolicy, SmtSimulator};
    let noisy = WorkloadKind::Go.build(1);
    let steady = WorkloadKind::Ijpeg.build(1);
    let mut g = c.benchmark_group("smt_policies");
    g.sample_size(10);
    for policy in [
        FetchPolicy::RoundRobin,
        FetchPolicy::FewestOutstanding,
        FetchPolicy::FewestLowConfidence,
    ] {
        g.bench_function(policy.name(), |b| {
            b.iter(|| {
                let mk = |p| {
                    let mut s =
                        Simulator::new(p, PipelineConfig::paper(), Box::new(Gshare::new(12)));
                    s.add_estimator(Box::new(SaturatingConfidence::selected()));
                    s
                };
                let mut smt =
                    SmtSimulator::new(vec![mk(&noisy.program), mk(&steady.program)], policy);
                black_box(smt.run(u64::MAX).total_committed())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_workload_throughput,
    bench_estimator_bank,
    bench_gating,
    bench_smt_policies
);
criterion_main!(benches);
