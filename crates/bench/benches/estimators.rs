//! Throughput of the confidence estimators over a gshare prediction stream.

use cestim_bpred::{BranchPredictor, Gshare, Prediction};
use cestim_core::{
    Boosted, ConfidenceEstimator, DistanceEstimator, Jrs, PatternHistory, SaturatingConfidence,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Pre-recorded (pc, ghr, prediction, correct) tuples from a gshare run,
/// so the estimator is the only thing measured.
fn recorded(len: usize) -> Vec<(u32, u32, Prediction, bool)> {
    let mut p = Gshare::new(12);
    let mut ghr = 0u32;
    let mut x = 0xDEAD_BEEFu32;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let pc = 0x40 + (x % 64) * 4;
            let taken = x & 0x300 != 0; // 75% taken
            let pred = p.predict(pc, ghr);
            let rec = (pc, ghr, pred, pred.taken == taken);
            p.update(pc, taken, &pred);
            ghr = (ghr << 1) | pred.taken as u32;
            rec
        })
        .collect()
}

fn drive<E: ConfidenceEstimator>(e: &mut E, s: &[(u32, u32, Prediction, bool)]) -> u64 {
    let mut high = 0u64;
    for &(pc, ghr, pred, correct) in s {
        high += e.estimate(pc, ghr, &pred).is_high() as u64;
        e.on_branch_resolved(!correct);
        e.update(pc, ghr, &pred, correct);
    }
    high
}

fn bench_estimators(c: &mut Criterion) {
    let s = recorded(10_000);
    let mut g = c.benchmark_group("estimators");
    g.throughput(Throughput::Elements(s.len() as u64));
    g.bench_function("jrs_enhanced", |b| {
        b.iter(|| black_box(drive(&mut Jrs::paper_enhanced(), &s)))
    });
    g.bench_function("jrs_base", |b| {
        b.iter(|| black_box(drive(&mut Jrs::paper_base(), &s)))
    });
    g.bench_function("satctr", |b| {
        b.iter(|| black_box(drive(&mut SaturatingConfidence::selected(), &s)))
    });
    g.bench_function("pattern", |b| {
        b.iter(|| black_box(drive(&mut PatternHistory::new(12), &s)))
    });
    g.bench_function("distance", |b| {
        b.iter(|| black_box(drive(&mut DistanceEstimator::new(4), &s)))
    });
    g.bench_function("boosted_satctr_k2", |b| {
        b.iter(|| {
            black_box(drive(
                &mut Boosted::new(SaturatingConfidence::selected(), 2),
                &s,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
