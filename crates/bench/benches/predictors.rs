//! Throughput of the branch predictors on a recorded branch stream.

use cestim_bpred::{Bimodal, BranchPredictor, Gshare, McFarling, SAg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A deterministic synthetic branch stream: 64 branch sites with mixed
/// behaviours (biased, alternating, noisy).
fn stream(len: usize) -> Vec<(u32, bool)> {
    let mut x = 0x1234_5678u32;
    (0..len)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let pc = 0x100 + (x % 64) * 4;
            let taken = match pc % 3 {
                0 => true,           // biased
                1 => i % 2 == 0,     // alternating
                _ => x & 0x100 != 0, // noisy
            };
            (pc, taken)
        })
        .collect()
}

fn drive<P: BranchPredictor>(p: &mut P, s: &[(u32, bool)]) -> u64 {
    let mut ghr = 0u32;
    let mut correct = 0u64;
    for &(pc, taken) in s {
        let pred = p.predict(pc, ghr);
        correct += (pred.taken == taken) as u64;
        p.update(pc, taken, &pred);
        ghr = (ghr << 1) | pred.taken as u32;
    }
    correct
}

fn bench_predictors(c: &mut Criterion) {
    let s = stream(10_000);
    let mut g = c.benchmark_group("predictors");
    g.throughput(Throughput::Elements(s.len() as u64));
    g.bench_function(BenchmarkId::new("bimodal", "10k"), |b| {
        b.iter(|| {
            let mut p = Bimodal::new(10);
            black_box(drive(&mut p, &s))
        })
    });
    g.bench_function(BenchmarkId::new("gshare", "10k"), |b| {
        b.iter(|| {
            let mut p = Gshare::new(12);
            black_box(drive(&mut p, &s))
        })
    });
    g.bench_function(BenchmarkId::new("mcfarling", "10k"), |b| {
        b.iter(|| {
            let mut p = McFarling::new(12);
            black_box(drive(&mut p, &s))
        })
    });
    g.bench_function(BenchmarkId::new("sag", "10k"), |b| {
        b.iter(|| {
            let mut p = SAg::paper_config();
            black_box(drive(&mut p, &s))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
