//! # cestim-bench
//!
//! Benchmark and reproduction harness for the cestim workspace.
//!
//! * `repro` binary — regenerates **every table and figure** of Klauser et
//!   al. (ISCA 1998): `cargo run --release -p cestim-bench --bin repro --
//!   all` writes text and JSON per experiment under `results/`.
//! * `speed` binary — quick pipeline-throughput smoke check per workload.
//! * Criterion benches (`predictors`, `estimators`, `pipeline`, `tables`) —
//!   component throughput and per-experiment timing/ablation benches.
//!
//! This crate intentionally contains no library logic beyond shared helper
//! functions for its binaries; all measurement code lives in `cestim-sim`.

#![warn(missing_docs)]

use std::path::Path;

/// Writes an experiment's text and JSON artifacts under `dir`.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the files.
pub fn write_artifacts(
    dir: &Path,
    id: &str,
    text: &str,
    json: &serde_json::Value,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{id}.txt")), text)?;
    std::fs::write(
        dir.join(format!("{id}.json")),
        serde_json::to_string_pretty(json)?,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_land_on_disk() {
        let dir = std::env::temp_dir().join("cestim-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        write_artifacts(&dir, "x", "hello", &serde_json::json!({"a": 1})).unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("x.txt")).unwrap(), "hello");
        let j: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("x.json")).unwrap()).unwrap();
        assert_eq!(j["a"], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
