//! # cestim-bench
//!
//! Benchmark and reproduction harness for the cestim workspace.
//!
//! * `repro` binary — regenerates **every table and figure** of Klauser et
//!   al. (ISCA 1998): `cargo run --release -p cestim-bench --bin repro --
//!   all` writes text and JSON per experiment under `results/`.
//! * `speed` binary — quick pipeline-throughput smoke check per workload.
//! * Criterion benches (`predictors`, `estimators`, `pipeline`, `tables`) —
//!   component throughput and per-experiment timing/ablation benches.
//!
//! This crate intentionally contains no library logic beyond shared helper
//! functions for its binaries; all measurement code lives in `cestim-sim`.

#![warn(missing_docs)]

use cestim_obs::{MetricsSnapshot, Tracer};
use cestim_pipeline::PipelineStats;
use std::io::Write;
use std::path::Path;

/// Writes an experiment's text and JSON artifacts under `dir`.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the files.
pub fn write_artifacts(
    dir: &Path,
    id: &str,
    text: &str,
    json: &serde_json::Value,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{id}.txt")), text)?;
    std::fs::write(
        dir.join(format!("{id}.json")),
        serde_json::to_string_pretty(json)?,
    )?;
    Ok(())
}

/// Writes a recorded trace as JSONL to `path`; returns the event count.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_trace(path: &Path, tracer: &Tracer) -> std::io::Result<u64> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    let n = tracer.export_jsonl(&mut w)?;
    w.flush()?;
    Ok(n)
}

/// Writes a metrics snapshot as pretty-printed JSON to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_metrics(path: &Path, snapshot: &MetricsSnapshot) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string_pretty(snapshot)?)
}

/// Writes `telemetry.json` (experiment spans + instrumented-run detail)
/// under `dir`.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_telemetry(dir: &Path, telemetry: &serde_json::Value) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("telemetry.json"),
        serde_json::to_string_pretty(telemetry)?,
    )
}

/// Writes `bench.json` (the machine-readable perf baseline produced by
/// `speed --bench`) under `dir`.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_bench(dir: &Path, bench: &serde_json::Value) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("bench.json"), serde_json::to_string_pretty(bench)?)
}

/// Writes drained span records as a Perfetto-loadable Chrome
/// `trace_event` JSON file; returns the span count.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_perfetto(
    path: &Path,
    spans: &[cestim_obs::span2::SpanRecord],
) -> std::io::Result<usize> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    cestim_obs::export::write_perfetto(spans, &mut w)?;
    w.flush()?;
    Ok(spans.len())
}

/// Writes a metrics snapshot in Prometheus text exposition format.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_prometheus(path: &Path, snapshot: &MetricsSnapshot) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    cestim_obs::export::write_prometheus(snapshot, &mut w)?;
    w.flush()
}

/// Renders the key derived rates of one run as an aligned text block,
/// using [`PipelineStats`]' rate helpers.
pub fn stats_summary(stats: &PipelineStats) -> String {
    format!(
        "cycles            {:>12}\n\
         committed insts   {:>12}\n\
         ipc               {:>12.3}\n\
         mispredict rate   {:>11.2}%  (committed)\n\
         speculation ratio {:>12.3}\n\
         squashed fraction {:>11.2}%\n\
         gated cycles      {:>11.2}%\n\
         recoveries/kinst  {:>12.2}\n\
         icache miss rate  {:>11.2}%\n\
         dcache miss rate  {:>11.2}%\n",
        stats.cycles,
        stats.committed_insts,
        stats.ipc(),
        stats.mispredict_rate_committed() * 100.0,
        stats.speculation_ratio(),
        stats.squashed_fraction() * 100.0,
        stats.gated_fraction() * 100.0,
        stats.recoveries_per_kilo_inst(),
        stats.icache_miss_rate() * 100.0,
        stats.dcache_miss_rate() * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_land_on_disk() {
        let dir = std::env::temp_dir().join("cestim-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        write_artifacts(&dir, "x", "hello", &serde_json::json!({"a": 1})).unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("x.txt")).unwrap(), "hello");
        let j: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("x.json")).unwrap()).unwrap();
        assert_eq!(j["a"], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn obs_writers_land_on_disk() {
        let dir = std::env::temp_dir().join("cestim-bench-obs-test");
        let _ = std::fs::remove_dir_all(&dir);

        let mut tracer = Tracer::unbounded();
        tracer.record(cestim_obs::TraceEvent::Gate {
            cycle: 1,
            low_confidence: 2,
        });
        assert_eq!(write_trace(&dir.join("t.jsonl"), &tracer).unwrap(), 1);
        let lines = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
        assert_eq!(lines.lines().count(), 1);

        let reg = cestim_obs::Registry::new();
        reg.counter("x", &[]).add(3);
        write_metrics(&dir.join("m.json"), &reg.snapshot()).unwrap();
        let m: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("m.json")).unwrap()).unwrap();
        assert!(m.to_string().contains('x'));

        write_telemetry(&dir, &serde_json::json!({ "experiments": [] })).unwrap();
        let t: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("telemetry.json")).unwrap())
                .unwrap();
        assert!(t["experiments"].as_array().is_some());

        write_bench(&dir, &serde_json::json!({ "speedup": 2.0 })).unwrap();
        let b: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("bench.json")).unwrap())
                .unwrap();
        assert!(b.get("speedup").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_writers_land_on_disk() {
        let dir = std::env::temp_dir().join("cestim-bench-telemetry-test");
        let _ = std::fs::remove_dir_all(&dir);

        let collector = cestim_obs::span2::SpanCollector::new();
        let mut buf = collector.buffer("main");
        let span = buf.open("root", cestim_obs::span2::SpanId::NONE, &[]);
        buf.close(span);
        buf.flush();
        let spans = collector.drain();
        assert_eq!(write_perfetto(&dir.join("trace.json"), &spans).unwrap(), 1);
        let j: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("trace.json")).unwrap())
                .unwrap();
        assert!(j["traceEvents"].as_array().is_some());

        let reg = cestim_obs::Registry::new();
        reg.counter("exec.jobs.submitted", &[]).add(2);
        write_prometheus(&dir.join("metrics.prom"), &reg.snapshot()).unwrap();
        let text = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(text.contains("# TYPE exec_jobs_submitted counter"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_summary_uses_rate_helpers() {
        let s = PipelineStats {
            cycles: 100,
            committed_insts: 200,
            fetched_insts: 300,
            squashed_insts: 100,
            committed_branches: 40,
            mispredicted_committed: 4,
            icache_accesses: 100,
            icache_misses: 1,
            dcache_accesses: 100,
            dcache_misses: 2,
            ..PipelineStats::default()
        };
        let text = stats_summary(&s);
        assert!(text.contains("2.000"), "{text}"); // ipc
        assert!(text.contains("10.00%"), "{text}"); // mispredict rate
    }
}
