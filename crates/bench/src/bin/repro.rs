//! Regenerates the paper's tables and figures, with optional run telemetry.
//!
//! ```text
//! repro [--scale N] [--out DIR] [--jobs N] [--no-cache | --refresh]
//!       [--cache-dir DIR] <experiment>...
//! repro all
//! repro --list
//! repro [--scale N] [--workload NAME] [--trace-out FILE]
//!       [--metrics-out FILE] [--obs-summary] [<experiment>...]
//! repro [--retries N] [--deadline-ms N] [--fault SPEC] [--resume] ...
//! ```
//!
//! Experiments: `fig1 table1 table2 fig3 fig4 fig5 table3 fig6 fig7 fig8
//! fig9 table4 cluster boost`. Each prints its table/series to stdout and
//! writes `<out>/<id>.txt` and `<out>/<id>.json` (default `results/`).
//!
//! Every experiment is decomposed into jobs and submitted to a shared
//! `cestim-exec` executor:
//!
//! * `--jobs N` — run up to `N` simulation jobs in parallel (default: the
//!   `CESTIM_JOBS` env var, else the machine's available parallelism).
//!   Output is bit-for-bit identical to a serial run.
//! * `--cache-dir DIR` — content-addressed result cache location
//!   (default `<out>/cache`). Unchanged jobs are answered from disk.
//! * `--refresh` — ignore cached results but still rewrite them.
//! * `--no-cache` — disable the cache entirely (no reads, no writes).
//! * `--cache-gc` — sweep stale-schema entries out of the cache and
//!   report what was removed; with no experiments listed, exits after
//!   the sweep.
//!
//! Resilience (see `docs/RESILIENCE.md`): a panicking or overdue job is
//! isolated into a structured error instead of aborting the run — the
//! experiment it belongs to is reported in a failure manifest while the
//! rest of the suite completes. Every job outcome is journaled
//! append-only under `<out>/journal/run.jsonl`:
//!
//! * `--retries N` — total attempts per job (default 1, i.e. no retry);
//!   transient faults converge to the fault-free output.
//! * `--deadline-ms N` — per-job wall-clock deadline; overdue jobs are
//!   recorded as timed out while survivors drain the queue.
//! * `--fault SPEC` — arm a deterministic chaos plan
//!   (`panic:N`/`slow:N:MS`/`io:N`, comma-separated; also readable from
//!   `CESTIM_EXEC_FAULT`).
//! * `--resume` — replay the journal of a killed run: experiments already
//!   journaled complete (with artifacts on disk) are skipped, and
//!   journaled jobs inside unfinished experiments are answered from the
//!   warm cache (counted in `exec.jobs_resumed`).
//!
//! Causal span telemetry (see `docs/OBSERVABILITY.md`):
//!
//! * `--trace-perfetto FILE` — record causal spans across the whole
//!   invocation (executor batches, per-job spans with cache keys, retry
//!   attempts with fault provenance, cache probes/stores, journal
//!   appends, simulator phases) and write a Perfetto-loadable Chrome
//!   `trace_event` JSON file at exit.
//! * `--prom-out FILE` — write the executor's metrics as Prometheus text
//!   exposition at exit.
//! * `--monitor` — redraw a live ANSI status block on stderr (jobs,
//!   queue depth, cache hit-rate, retries, latency quantiles) while the
//!   suite runs.
//!
//! Branch-trace ingestion (see `docs/TRACES.md`):
//!
//! * `--export-trace FILE` — export the selected workload's architectural
//!   branch trace (`--workload`/`--scale` choose the program). `.jsonl`
//!   extension selects the JSONL twin encoding, anything else the compact
//!   binary format.
//! * `--trace-in FILE` — import a branch trace (either encoding,
//!   auto-detected) and replay it through the pipeline (gshare + the
//!   conformance estimator set) as an executor job: the result flows
//!   through the content-addressed cache keyed by the trace's content
//!   hash, and artifacts land at `<out>/trace-<hash16>-gshare.{txt,json}`.
//! * `--trace-live` — run the equivalent live simulation (replay fetch
//!   mode on the `--workload` program) and write artifacts under the same
//!   naming scheme. Importing a trace exported from the same workload and
//!   replaying it with `--trace-in` must produce byte-identical artifact
//!   files — the end-to-end conformance check CI runs.
//!
//! Any of `--trace-out`, `--metrics-out`, `--obs-summary` additionally run
//! one fully instrumented pipeline pass (default workload `compress`,
//! gshare predictor, the paper estimator set):
//!
//! * `--trace-out FILE` — record every pipeline event and write a JSONL
//!   trace replayable by `cestim-trace`'s `replay_jsonl`.
//! * `--metrics-out FILE` — export the full metrics snapshot (counters,
//!   rates, per-estimator quadrants, phase timings) as JSON.
//! * `--obs-summary` — print the per-phase wall-clock table and the run's
//!   key derived rates.
//!
//! Every invocation also writes `<out>/telemetry.json` with per-experiment
//! wall-clock spans, the executor's job/cache counters and metrics, and the
//! instrumented run's phase timings.

use cestim_exec::{
    default_workers, install_quiet_panic_hook, CachePolicy, DiskCache, Executor, FaultPlan,
    RetryPolicy, RunJournal,
};
use cestim_obs::monitor::RunMonitor;
use cestim_obs::span2::{self, SpanCollector, SpanId};
use cestim_obs::{render_timing_table, MetricValue, PhaseProfiler, Registry, Span, Tracer};
use cestim_pipeline::NullObserver;
use cestim_sim::{run_instrumented, suite, EstimatorSpec, PredictorKind, RunConfig};
use cestim_workloads::WorkloadKind;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    scale: u32,
    out: PathBuf,
    ids: Vec<String>,
    jobs: Option<usize>,
    no_cache: bool,
    refresh: bool,
    cache_dir: Option<PathBuf>,
    workload: WorkloadKind,
    predictor: PredictorKind,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    obs_summary: bool,
    qa_replay: Option<PathBuf>,
    fault: FaultPlan,
    retries: Option<u32>,
    deadline_ms: Option<u64>,
    resume: bool,
    trace_perfetto: Option<PathBuf>,
    prom_out: Option<PathBuf>,
    monitor: bool,
    cache_gc: bool,
    export_trace: Option<PathBuf>,
    trace_in: Option<PathBuf>,
    trace_live: bool,
}

impl Args {
    fn instrumented(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.obs_summary
    }

    fn trace_modes(&self) -> bool {
        self.export_trace.is_some() || self.trace_in.is_some() || self.trace_live
    }

    fn cache_policy(&self) -> CachePolicy {
        if self.no_cache {
            CachePolicy::Disabled
        } else if self.refresh {
            CachePolicy::Refresh
        } else {
            CachePolicy::ReadWrite
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale N] [--out DIR] [--jobs N] [--no-cache | --refresh]\n\
         \x20            [--cache-dir DIR] [--workload NAME] [--predictor NAME]\n\
         \x20            [--trace-out FILE]\n\
         \x20            [--metrics-out FILE] [--obs-summary] [--qa-replay DIR]\n\
         \x20            [--retries N] [--deadline-ms N] [--fault SPEC] [--resume]\n\
         \x20            [--trace-perfetto FILE] [--prom-out FILE] [--monitor]\n\
         \x20            [--export-trace FILE] [--trace-in FILE] [--trace-live]\n\
         \x20            [--cache-gc] <experiment>... | all | --list\n\
         fault spec:  panic:N | slow:N:MS | io:N (comma-separated)\n\
         experiments: {}\n\
         workloads:   {}\n\
         predictors:  {}",
        suite::all_ids().join(" "),
        WorkloadKind::all()
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(" "),
        PredictorKind::all()
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 4,
        out: PathBuf::from("results"),
        ids: Vec::new(),
        jobs: None,
        no_cache: false,
        refresh: false,
        cache_dir: None,
        workload: WorkloadKind::Compress,
        predictor: PredictorKind::Gshare,
        trace_out: None,
        metrics_out: None,
        obs_summary: false,
        qa_replay: None,
        fault: FaultPlan::from_env(),
        retries: None,
        deadline_ms: None,
        resume: false,
        trace_perfetto: None,
        prom_out: None,
        monitor: false,
        cache_gc: false,
        export_trace: None,
        trace_in: None,
        trace_live: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => args.out = PathBuf::from(argv.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                args.jobs = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--no-cache" => args.no_cache = true,
            "--refresh" => args.refresh = true,
            "--cache-dir" => {
                args.cache_dir = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--workload" => {
                args.workload = argv
                    .next()
                    .and_then(|v| WorkloadKind::from_name(&v))
                    .unwrap_or_else(|| usage());
            }
            "--predictor" => {
                let name = argv.next().unwrap_or_else(|| usage());
                args.predictor = PredictorKind::from_name_strict(&name).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--obs-summary" => args.obs_summary = true,
            "--qa-replay" => {
                args.qa_replay = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--fault" => {
                let spec = argv.next().unwrap_or_else(|| usage());
                args.fault = FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            }
            "--retries" => {
                args.retries = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--resume" => args.resume = true,
            "--trace-perfetto" => {
                args.trace_perfetto = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--prom-out" => {
                args.prom_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--monitor" => args.monitor = true,
            "--cache-gc" => args.cache_gc = true,
            "--export-trace" => {
                args.export_trace = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--trace-in" => {
                args.trace_in = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--trace-live" => args.trace_live = true,
            "--list" => {
                for id in suite::all_ids() {
                    println!("{id}");
                }
                std::process::exit(0);
            }
            "all" => args
                .ids
                .extend(suite::all_ids().iter().map(|s| s.to_string())),
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => usage(),
            other => args.ids.push(other.to_string()),
        }
    }
    if args.ids.is_empty()
        && !args.instrumented()
        && args.qa_replay.is_none()
        && !args.cache_gc
        && !args.trace_modes()
    {
        usage();
    }
    if args.no_cache && args.refresh {
        eprintln!("error: --no-cache and --refresh are mutually exclusive");
        std::process::exit(2);
    }
    args
}

/// Builds the shared experiment executor from the command-line flags and
/// sweeps entries written under an older job schema out of the cache.
fn build_executor(args: &Args) -> std::io::Result<Executor> {
    let workers = args.jobs.unwrap_or_else(default_workers);
    let cache_dir = args
        .cache_dir
        .clone()
        .unwrap_or_else(|| args.out.join("cache"));
    let mut exec = Executor::new(workers).with_cache(cache_dir, args.cache_policy())?;
    let stale = exec.evict_stale(cestim_sim::sim_schema_salt());
    if stale > 0 {
        println!("[cache: evicted {stale} stale entr{}]", plural_y(stale));
    }
    if !args.fault.is_none() {
        println!("[chaos: fault plan {} armed]", args.fault);
        exec = exec.with_fault_plan(args.fault);
    }
    if let Some(n) = args.retries {
        exec = exec.with_retry(RetryPolicy::with_attempts(n));
    }
    if let Some(ms) = args.deadline_ms {
        exec = exec.with_deadline(Some(Duration::from_millis(ms)));
    }
    Ok(exec)
}

/// Sweeps cache entries written under an older job schema out of the
/// on-disk cache at `dir`, returning `(removed, remaining)`.
fn run_cache_gc(dir: &Path) -> std::io::Result<(usize, usize)> {
    let cache = DiskCache::open(dir)?;
    let removed = cache.evict_stale(cestim_sim::sim_schema_salt())?;
    Ok((removed, cache.len()?))
}

/// Opens the run journal under `<out>/journal/`: resumed (replaying prior
/// completions) or fresh (rotating the previous journal aside).
fn open_journal(args: &Args) -> std::io::Result<RunJournal> {
    let dir = args.out.join("journal");
    if args.resume {
        let journal = RunJournal::resume(&dir)?;
        println!(
            "[resume: journal replayed {} job{} and {} experiment{}]",
            journal.prior_job_count(),
            if journal.prior_job_count() == 1 {
                ""
            } else {
                "s"
            },
            journal.prior_experiment_count(),
            if journal.prior_experiment_count() == 1 {
                ""
            } else {
                "s"
            },
        );
        Ok(journal)
    } else {
        RunJournal::start(&dir)
    }
}

/// True when both artifacts a completed experiment writes are on disk.
fn artifacts_exist(out: &Path, id: &str) -> bool {
    out.join(format!("{id}.txt")).exists() && out.join(format!("{id}.json")).exists()
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

/// Maps a user-supplied experiment id back to its `'static` suite name
/// (phase profiling requires `&'static str` labels).
fn static_id(id: &str) -> Option<&'static str> {
    suite::all_ids().iter().copied().find(|s| *s == id)
}

/// One instrumented pass: the selected predictor + its paper estimator
/// set on the chosen workload, with tracing (if requested), phase
/// profiling, and metrics.
fn run_instrumented_pass(args: &Args) -> std::io::Result<serde_json::Value> {
    let cfg = RunConfig::paper(args.workload, args.scale, args.predictor);
    let specs = EstimatorSpec::paper_set(args.predictor);
    let tracer = if args.trace_out.is_some() {
        Tracer::unbounded()
    } else {
        Tracer::disabled()
    };
    let inst = run_instrumented(&cfg, &specs, tracer, &mut NullObserver);

    if let Some(path) = &args.trace_out {
        let n = cestim_bench::write_trace(path, &inst.tracer)?;
        println!("[trace: {n} events -> {}]", path.display());
    }
    if let Some(path) = &args.metrics_out {
        cestim_bench::write_metrics(path, &inst.metrics)?;
        println!("[metrics -> {}]", path.display());
    }
    if args.obs_summary {
        println!(
            "instrumented run: workload={} predictor={} scale={} ({:.2}s)",
            args.workload.name(),
            args.predictor.name(),
            args.scale,
            inst.wall_seconds
        );
        print!("{}", render_timing_table(&inst.phase_timings));
        println!();
        print!("{}", cestim_bench::stats_summary(&inst.outcome.stats));
        for e in &inst.outcome.estimators {
            let q = e.quadrants.committed;
            println!(
                "estimator {:28} pvn={:5.1}% sens={:5.1}%",
                e.name,
                q.pvn() * 100.0,
                q.sens() * 100.0
            );
        }
    }

    Ok(serde_json::json!({
        "workload": args.workload.name(),
        "predictor": args.predictor.name(),
        "scale": args.scale,
        "wall_seconds": inst.wall_seconds,
        "trace_events": inst.tracer.len(),
        "phase_timings": inst.phase_timings,
        "stats": inst.outcome.stats,
    }))
}

/// Exports the configured workload's architectural branch trace to
/// `path`; the `.jsonl` extension selects the JSONL twin encoding.
fn run_export_trace(args: &Args, path: &Path) -> std::io::Result<()> {
    let cfg = RunConfig::paper(args.workload, args.scale, PredictorKind::Gshare);
    let records = cestim_sim::export_config_trace(&cfg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let bytes = if jsonl {
        cestim_trace_io::to_jsonl(&records).into_bytes()
    } else {
        cestim_trace_io::to_binary(&records)
    };
    std::fs::write(path, bytes)?;
    println!(
        "[trace-export: {} records, hash {}, {} -> {}]",
        records.len(),
        cestim_trace_io::content_hash_hex(&records),
        if jsonl { "jsonl" } else { "binary" },
        path.display()
    );
    Ok(())
}

/// Renders a trace-replay outcome as the `trace-<hash16>-<predictor>`
/// artifact pair. Both replay paths (`--trace-in` and `--trace-live`) go
/// through this one function, so equal outcomes yield byte-identical
/// files.
fn write_trace_artifacts(
    args: &Args,
    hash: &str,
    predictor: PredictorKind,
    record_count: usize,
    outcome: &cestim_sim::RunOutcome,
) -> std::io::Result<String> {
    let id = format!("trace-{hash}-{}", predictor.name());
    let mut text = format!(
        "trace replay: trace={hash} predictor={} records={record_count}\n{}",
        predictor.name(),
        cestim_bench::stats_summary(&outcome.stats),
    );
    for e in &outcome.estimators {
        let q = e.quadrants.committed;
        text.push_str(&format!(
            "estimator {:28} sens={:.6} spec={:.6} pvp={:.6} pvn={:.6}\n",
            e.name,
            q.sens(),
            q.spec(),
            q.pvp(),
            q.pvn()
        ));
    }
    let json = serde_json::json!({
        "trace": hash,
        "predictor": predictor.name(),
        "records": record_count,
        "stats": outcome.stats,
        "estimators": outcome.estimators,
    });
    cestim_bench::write_artifacts(&args.out, &id, &text, &json)?;
    println!("[{id}: artifacts -> {}]", args.out.display());
    Ok(id)
}

/// Imports a branch trace and replays it through the executor (and its
/// content-addressed cache) as an `ExecJob::Replay`.
fn run_trace_in(args: &Args, exec: &Executor, path: &Path) -> std::io::Result<String> {
    use cestim_sim::ExecJob;
    let bytes = std::fs::read(path)?;
    let records = cestim_trace_io::from_bytes(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let hash = cestim_trace_io::content_hash_hex(&records);
    let count = records.len();
    println!(
        "[trace-in: {count} records, hash {hash} from {}]",
        path.display()
    );
    let predictor = args.predictor;
    let job = ExecJob::Replay {
        records,
        predictor,
        pipeline: cestim_pipeline::PipelineConfig::paper(),
        specs: cestim_sim::conformance_specs(),
    };
    let outcome = exec
        .run_all(std::slice::from_ref(&job))
        .pop()
        .expect("one job in, one output out")
        .into_run();
    write_trace_artifacts(args, &hash, predictor, count, &outcome)
}

/// Runs the live equivalent of `--trace-in`: replay-fetch-mode simulation
/// of the configured workload, artifacts keyed by the trace the workload
/// *would* export. Byte-identical artifacts to a `--trace-in` run over
/// that exported trace is the end-to-end conformance contract.
fn run_trace_live(args: &Args) -> std::io::Result<String> {
    let cfg = RunConfig::paper(args.workload, args.scale, args.predictor);
    let records = cestim_sim::export_config_trace(&cfg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let hash = cestim_trace_io::content_hash_hex(&records);
    println!(
        "[trace-live: workload {} scale {} ({} records, hash {hash})]",
        args.workload.name(),
        args.scale,
        records.len()
    );
    let outcome = cestim_sim::run_replay_live(&cfg, &cestim_sim::conformance_specs());
    write_trace_artifacts(args, &hash, cfg.predictor, records.len(), &outcome)
}

/// Replays every minimised reproducer under `dir` with no fault armed
/// (the regression contract for corpus entries) and returns the `qa`
/// telemetry block, including the `qa.*` metric snapshot.
fn run_qa_replay(dir: &Path, failed_ids: &mut Vec<String>) -> serde_json::Value {
    let registry = Registry::new();
    match cestim_qa::replay_corpus(dir, &registry) {
        Ok(results) => {
            println!(
                "[qa-replay: {} corpus entr{} from {}]",
                results.len(),
                plural_y(results.len()),
                dir.display()
            );
            let mut entries = Vec::new();
            for (name, outcome) in &results {
                match outcome {
                    Ok(()) => println!("  {name}: ok"),
                    Err(f) => {
                        eprintln!("error: qa corpus entry {name} failed: {f}");
                        failed_ids.push(format!("qa:{name}"));
                    }
                }
                entries.push(serde_json::json!({
                    "entry": name,
                    "ok": outcome.is_ok(),
                }));
            }
            serde_json::json!({
                "corpus_dir": dir.display().to_string(),
                "entries": entries,
                "metrics": registry.snapshot(),
            })
        }
        Err(e) => {
            eprintln!("error: qa replay failed: {e}");
            failed_ids.push("<qa-replay>".to_string());
            serde_json::Value::Null
        }
    }
}

fn main() -> ExitCode {
    install_quiet_panic_hook();
    let args = parse_args();
    if args.cache_gc {
        let cache_dir = args
            .cache_dir
            .clone()
            .unwrap_or_else(|| args.out.join("cache"));
        match run_cache_gc(&cache_dir) {
            Ok((removed, remaining)) => println!(
                "[cache-gc: removed {removed} stale entr{}, {remaining} fresh remain{}]",
                plural_y(removed),
                if remaining == 1 { "s" } else { "" },
            ),
            Err(e) => {
                eprintln!("error: cache gc failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        // Standalone GC mode: nothing else to run.
        if args.ids.is_empty()
            && !args.instrumented()
            && args.qa_replay.is_none()
            && !args.trace_modes()
        {
            return ExitCode::SUCCESS;
        }
    }
    // Span tracing is off (and near-free) unless a Perfetto sink was
    // requested; when on, the whole invocation becomes one causal tree
    // under a `repro` root span.
    let spans = if args.trace_perfetto.is_some() {
        SpanCollector::new()
    } else {
        SpanCollector::disabled()
    };
    let mut root_buf = spans.buffer("main");
    let root_span = root_buf.open("repro", SpanId::NONE, &[]);
    let ambient = spans
        .enabled()
        .then(|| span2::set_ambient(&spans, root_span.id(), "main"));
    let mut exec = match build_executor(&args) {
        Ok(exec) => exec.with_spans(&spans),
        Err(e) => {
            eprintln!("error: failed to open result cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = if args.ids.is_empty() {
        None
    } else {
        match open_journal(&args) {
            Ok(j) => Some(Arc::new(j)),
            Err(e) => {
                eprintln!(
                    "warning: run journal unavailable ({e}); continuing without resume support"
                );
                None
            }
        }
    };
    if let Some(j) = &journal {
        exec = exec.with_journal(Arc::clone(j));
    }
    let monitor = args
        .monitor
        .then(|| RunMonitor::start(exec.registry(), Duration::from_millis(200)));

    let mut failed_ids = Vec::new();
    let mut failures: Vec<suite::ExperimentFailure> = Vec::new();
    let mut experiment_spans = Vec::new();
    // The modern-families table is mirrored into telemetry so automation
    // can assert on its rows without parsing the per-experiment artifact.
    let mut modern = serde_json::Value::Null;
    let mut profiler = PhaseProfiler::new(true);
    for id in &args.ids {
        if args.resume {
            if let Some(j) = &journal {
                if j.was_experiment_done(id) && artifacts_exist(&args.out, id) {
                    println!("[{id}: complete in journal, skipped]\n");
                    experiment_spans
                        .push(serde_json::json!({ "id": id, "seconds": 0.0, "resumed": true }));
                    continue;
                }
            }
        }
        let phase = static_id(id).map(|name| profiler.phase(name));
        let started = profiler.start();
        let span = Span::begin(id.clone());
        match suite::run_experiment_checked(&exec, id, args.scale) {
            Some(Ok(r)) => {
                println!("{}\n{}", r.title, r.text);
                if r.id == "ext-modern" {
                    modern = r.json.clone();
                }
                let timing = span.end();
                let seconds = timing.nanos as f64 / 1e9;
                println!("[{id} done in {seconds:.1}s]\n");
                experiment_spans.push(serde_json::json!({ "id": id, "seconds": seconds }));
                match cestim_bench::write_artifacts(&args.out, id, &r.text, &r.json) {
                    Ok(()) => {
                        if let Some(j) = &journal {
                            j.record_experiment(id, "done");
                        }
                    }
                    Err(e) => {
                        eprintln!("error: failed to write artifacts for {id}: {e}");
                        failed_ids.push(id.clone());
                    }
                }
            }
            Some(Err(failure)) => {
                eprintln!("error: {failure}");
                failed_ids.push(id.clone());
                if let Some(j) = &journal {
                    j.record_experiment(id, "failed");
                }
                failures.push(failure);
            }
            None => {
                eprintln!("error: unknown experiment '{id}' (try --list)");
                failed_ids.push(id.clone());
            }
        }
        if let Some(phase) = phase {
            profiler.stop(phase, started);
        }
    }

    if let Some(m) = monitor {
        m.stop();
    }
    let report = exec.report();
    if !args.ids.is_empty() {
        println!(
            "[executor: {} worker{}, {} job{} ({} cache hit{}, {} executed), cache {}]",
            report.workers,
            if report.workers == 1 { "" } else { "s" },
            report.submitted,
            if report.submitted == 1 { "" } else { "s" },
            report.cache_hits,
            if report.cache_hits == 1 { "" } else { "s" },
            report.executed,
            report.cache_policy,
        );
        let resilience_events = report.retries
            + report.panics_caught
            + report.timeouts
            + report.jobs_resumed
            + report.cache_store_errors;
        if resilience_events > 0 {
            println!(
                "[resilience: {} retries, {} panics caught, {} timeouts, {} jobs resumed, \
                 {} cache store errors]",
                report.retries,
                report.panics_caught,
                report.timeouts,
                report.jobs_resumed,
                report.cache_store_errors,
            );
        }
        if let Some(MetricValue::Histogram(h)) = exec.registry().snapshot().get("exec.job.nanos") {
            if h.count > 0 {
                use cestim_obs::monitor::fmt_nanos;
                println!(
                    "[job time: p50 {}, p95 {}, p99 {}]",
                    fmt_nanos(h.quantile(0.50)),
                    fmt_nanos(h.quantile(0.95)),
                    fmt_nanos(h.quantile(0.99)),
                );
            }
        }
    }

    let mut trace_ids: Vec<String> = Vec::new();
    if let Some(path) = &args.export_trace {
        if let Err(e) = run_export_trace(&args, path) {
            eprintln!("error: trace export failed: {e}");
            failed_ids.push("<export-trace>".to_string());
        }
    }
    if let Some(path) = &args.trace_in {
        match run_trace_in(&args, &exec, path) {
            Ok(id) => trace_ids.push(id),
            Err(e) => {
                eprintln!("error: trace import/replay failed: {e}");
                failed_ids.push("<trace-in>".to_string());
            }
        }
    }
    if args.trace_live {
        match run_trace_live(&args) {
            Ok(id) => trace_ids.push(id),
            Err(e) => {
                eprintln!("error: live trace replay failed: {e}");
                failed_ids.push("<trace-live>".to_string());
            }
        }
    }

    let mut instrumented = serde_json::Value::Null;
    if args.instrumented() {
        match run_instrumented_pass(&args) {
            Ok(v) => instrumented = v,
            Err(e) => {
                eprintln!("error: instrumented run failed: {e}");
                failed_ids.push("<instrumented>".to_string());
            }
        }
    }

    let mut qa = serde_json::Value::Null;
    if let Some(dir) = &args.qa_replay {
        qa = run_qa_replay(dir, &mut failed_ids);
    }

    let telemetry = serde_json::json!({
        "experiments": experiment_spans,
        "experiment_phases": profiler.timings(),
        "executor": report,
        "executor_metrics": exec.registry().snapshot(),
        "instrumented": instrumented,
        "modern": modern,
        "trace_artifacts": trace_ids,
        "qa": qa,
        "fault_plan": args.fault.to_string(),
        "resumed": args.resume,
        "failures": failures,
    });
    if let Err(e) = cestim_bench::write_telemetry(&args.out, &telemetry) {
        eprintln!("error: failed to write telemetry: {e}");
        failed_ids.push("<telemetry>".to_string());
    }

    drop(ambient);
    root_buf.close(root_span);
    root_buf.flush();
    if let Some(path) = &args.trace_perfetto {
        match cestim_bench::write_perfetto(path, &spans.drain()) {
            Ok(n) => println!("[perfetto: {n} spans -> {}]", path.display()),
            Err(e) => {
                eprintln!("error: failed to write perfetto trace: {e}");
                failed_ids.push("<perfetto>".to_string());
            }
        }
    }
    if let Some(path) = &args.prom_out {
        match cestim_bench::write_prometheus(path, &exec.registry().snapshot()) {
            Ok(()) => println!("[prometheus -> {}]", path.display()),
            Err(e) => {
                eprintln!("error: failed to write prometheus exposition: {e}");
                failed_ids.push("<prometheus>".to_string());
            }
        }
    }

    if failed_ids.is_empty() {
        ExitCode::SUCCESS
    } else {
        if !failures.is_empty() {
            eprintln!("failure manifest:");
            for f in &failures {
                eprintln!("  {f}");
            }
        }
        eprintln!(
            "error: {} step{} failed: {}",
            failed_ids.len(),
            if failed_ids.len() == 1 { "" } else { "s" },
            failed_ids.join(" ")
        );
        ExitCode::FAILURE
    }
}
