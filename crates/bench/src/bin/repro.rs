//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale N] [--out DIR] <experiment>...
//! repro all
//! repro --list
//! ```
//!
//! Experiments: `fig1 table1 table2 fig3 fig4 fig5 table3 fig6 fig7 fig8
//! fig9 table4 cluster boost`. Each prints its table/series to stdout and
//! writes `<out>/<id>.txt` and `<out>/<id>.json` (default `results/`).

use cestim_sim::suite;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: u32,
    out: PathBuf,
    ids: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale N] [--out DIR] <experiment>... | all | --list\n\
         experiments: {}",
        suite::all_ids().join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut scale = 4u32;
    let mut out = PathBuf::from("results");
    let mut ids = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => {
                scale = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => out = PathBuf::from(argv.next().unwrap_or_else(|| usage())),
            "--list" => {
                for id in suite::all_ids() {
                    println!("{id}");
                }
                std::process::exit(0);
            }
            "all" => ids.extend(suite::all_ids().iter().map(|s| s.to_string())),
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    Args { scale, out, ids }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = false;
    for id in &args.ids {
        let start = std::time::Instant::now();
        match suite::run_experiment(id, args.scale) {
            Some(r) => {
                println!("{}\n{}", r.title, r.text);
                println!("[{} done in {:.1}s]\n", id, start.elapsed().as_secs_f64());
                if let Err(e) = cestim_bench::write_artifacts(&args.out, id, &r.text, &r.json) {
                    eprintln!("error: failed to write artifacts for {id}: {e}");
                    failed = true;
                }
            }
            None => {
                eprintln!("error: unknown experiment '{id}' (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
