//! Pipeline-throughput measurement harness, plus the experiment perf
//! baseline.
//!
//! ```text
//! speed [scale] [--reps N] [--warmup N] [--predictors a,b] [--json FILE]
//!       [--note TEXT] [--check BASELINE.json] [--tolerance PCT]
//!       [--trace-out FILE] [--metrics-out FILE] [--obs-summary]
//!       [--trace-in FILE]...
//! speed [scale] --bench [--jobs N] [--out DIR] [--experiments id,id,...]
//! ```
//!
//! The default mode is a statistically robust speed harness: for every
//! workload × predictor cell it runs `--warmup` untimed passes followed by
//! `--reps` timed passes of the full pipeline (gshare + the paper's JRS
//! estimator by default), reports the **median** and **MAD** (median
//! absolute deviation) of branches-per-second, and appends one trajectory
//! entry to a machine-readable JSON file (default `BENCH_speed.json` in
//! the current directory). Median/MAD are used instead of mean/stddev so a
//! single noisy rep — a scheduler hiccup, a page-cache miss — cannot move
//! the recorded figure.
//!
//! * `--reps N` / `--warmup N` — timed and untimed repetitions (default
//!   5 / 1).
//! * `--predictors a,b,c` — predictor cells to measure (default `gshare`;
//!   accepts `gshare,mcfarling,sag,bimodal`).
//! * `--json FILE` — trajectory file to append to (`-` disables writing).
//! * `--note TEXT` — free-form note stored with the trajectory entry.
//! * `--check BASELINE.json` — compare this run against the **last** run
//!   recorded in BASELINE at the same scale and exit non-zero when any
//!   cell's median branches/sec regressed by more than `--tolerance` PCT
//!   (default 10). Cells whose baseline is too noisy (MAD > 20 % of the
//!   median) are skipped rather than allowed to flake the gate.
//! * `--trace-out` / `--metrics-out` / `--obs-summary` — run one extra
//!   *instrumented* pass per workload and export its trace/metrics/phase
//!   table; the timed reps always run uninstrumented.
//! * `--trace-perfetto FILE` / `--prom-out FILE` — causal span trace
//!   (Perfetto/Chrome `trace_event` JSON) and Prometheus text exposition
//!   from the instrumented pass (see `docs/OBSERVABILITY.md`).
//! * `--overhead` — measure the tracing A/B overhead cell (interleaved
//!   tracing-off/tracing-on passes of compress × gshare) and record it
//!   in the trajectory entry under `overhead`.
//! * `--overhead-max PCT` — implies `--overhead`; exit non-zero when the
//!   traced arm's median slowdown exceeds `PCT` percent.
//! * `--trace-in FILE` (repeatable) — additionally measure imported-trace
//!   replay cells: each file is imported once (either `cestim-trace-io`
//!   encoding) and timed through the `TraceSimulator` replay frontend for
//!   every selected predictor. Trace cells are labelled
//!   `trace:<file-stem>` in the output and the trajectory JSON, so they
//!   never collide with (or gate against) live workload cells.
//!
//! `--bench` instead times experiment regeneration through the
//! `cestim-exec` engine — serial versus `--jobs N` (cache-cold) versus
//! cache-warm — and writes the machine-readable baseline to
//! `<out>/bench.json`:
//!
//! * `--jobs N` — worker count for the parallel passes (default: the
//!   `CESTIM_JOBS` env var, else available parallelism).
//! * `--out DIR` — output directory (default `results/`); the bench cache
//!   lives under `<out>/bench-cache` and is cleared afterwards.
//! * `--experiments a,b,c` — subset of experiment ids (default: all).

use cestim_exec::{default_workers, CachePolicy, Executor};
use cestim_obs::span2::{self, SpanCollector, SpanId};
use cestim_obs::{render_timing_table, Registry, TraceWriter, Tracer};
use cestim_pipeline::{PipelineConfig, PipelineStats, Simulator, TraceSimulator};
use cestim_sim::{suite, PredictorKind};
use cestim_workloads::WorkloadKind;
use serde_json::{json, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Schema tag written into the trajectory file.
const SPEED_SCHEMA: &str = "cestim-bench-speed/1";
/// Baseline cells noisier than this (MAD / median) are excluded from the
/// `--check` regression gate.
const NOISE_GUARD: f64 = 0.20;

struct Args {
    scale: u32,
    reps: u32,
    warmup: u32,
    predictors: Vec<PredictorKind>,
    json: Option<PathBuf>,
    note: Option<String>,
    check: Option<PathBuf>,
    tolerance: f64,
    bench: bool,
    jobs: Option<usize>,
    out: PathBuf,
    experiments: Option<Vec<String>>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    obs_summary: bool,
    trace_perfetto: Option<PathBuf>,
    prom_out: Option<PathBuf>,
    overhead: bool,
    overhead_max: Option<f64>,
    trace_in: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: speed [scale] [--reps N] [--warmup N] [--predictors a,b] [--json FILE]\n\
         \x20             [--note TEXT] [--check BASELINE.json] [--tolerance PCT]\n\
         \x20             [--trace-out FILE] [--metrics-out FILE] [--obs-summary]\n\
         \x20             [--trace-perfetto FILE] [--prom-out FILE]\n\
         \x20             [--overhead] [--overhead-max PCT] [--trace-in FILE]...\n\
         \x20      speed [scale] --bench [--jobs N] [--out DIR] [--experiments id,id,...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 4,
        reps: 5,
        warmup: 1,
        predictors: vec![PredictorKind::Gshare],
        json: Some(PathBuf::from("BENCH_speed.json")),
        note: None,
        check: None,
        tolerance: 10.0,
        bench: false,
        jobs: None,
        out: PathBuf::from("results"),
        experiments: None,
        trace_out: None,
        metrics_out: None,
        obs_summary: false,
        trace_perfetto: None,
        prom_out: None,
        overhead: false,
        overhead_max: None,
        trace_in: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--bench" => args.bench = true,
            "--reps" => {
                args.reps = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--warmup" => {
                args.warmup = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--predictors" => {
                let list = argv.next().unwrap_or_else(|| usage());
                args.predictors = list
                    .split(',')
                    .map(|p| PredictorKind::from_name(p.trim()).unwrap_or_else(|| usage()))
                    .collect();
                if args.predictors.is_empty() {
                    usage();
                }
            }
            "--json" => {
                let v = argv.next().unwrap_or_else(|| usage());
                args.json = (v != "-").then(|| PathBuf::from(v));
            }
            "--note" => args.note = Some(argv.next().unwrap_or_else(|| usage())),
            "--check" => args.check = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage()))),
            "--tolerance" => {
                args.tolerance = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t.is_finite() && t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                args.jobs = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--out" => args.out = PathBuf::from(argv.next().unwrap_or_else(|| usage())),
            "--experiments" => {
                let list = argv.next().unwrap_or_else(|| usage());
                args.experiments = Some(list.split(',').map(str::to_string).collect());
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--obs-summary" => args.obs_summary = true,
            "--trace-perfetto" => {
                args.trace_perfetto = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--prom-out" => {
                args.prom_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--trace-in" => {
                args.trace_in
                    .push(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--overhead" => args.overhead = true,
            "--overhead-max" => {
                args.overhead = true;
                args.overhead_max = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t: &f64| t.is_finite() && t >= 0.0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "-h" | "--help" => usage(),
            other => match other.parse() {
                Ok(scale) => args.scale = scale,
                Err(_) => usage(),
            },
        }
    }
    args
}

/// Times one experiment three ways — serial (no cache), parallel with a
/// cold cache, parallel again with the warm cache — and checks that the
/// parallel output is byte-identical to the serial one.
fn bench_experiment(
    id: &str,
    scale: u32,
    jobs: usize,
    cache_dir: &std::path::Path,
) -> std::io::Result<serde_json::Value> {
    let serial_exec = Executor::sequential();
    let t = Instant::now();
    let serial = suite::run_experiment_with(&serial_exec, id, scale)
        .ok_or_else(|| std::io::Error::other(format!("unknown experiment '{id}'")))?;
    let serial_seconds = t.elapsed().as_secs_f64();

    // Refresh skips cache reads, so this pass is cold even when an earlier
    // experiment already stored overlapping jobs; it still writes, warming
    // the cache for the third pass.
    let cold_exec = Executor::new(jobs).with_cache(cache_dir, CachePolicy::Refresh)?;
    let t = Instant::now();
    let cold = suite::run_experiment_with(&cold_exec, id, scale).expect("id validated above");
    let parallel_seconds = t.elapsed().as_secs_f64();
    let identical = serial.text == cold.text && serial.json == cold.json;

    let warm_exec = Executor::new(jobs).with_cache(cache_dir, CachePolicy::ReadWrite)?;
    let t = Instant::now();
    let warm = suite::run_experiment_with(&warm_exec, id, scale).expect("id validated above");
    let warm_seconds = t.elapsed().as_secs_f64();
    let warm_report = warm_exec.report();
    let warm_identical = serial.text == warm.text;

    let speedup = serial_seconds / parallel_seconds.max(1e-9);
    println!(
        "{id:14} serial={serial_seconds:7.3}s jobs={jobs} cold={parallel_seconds:7.3}s \
         warm={warm_seconds:7.3}s speedup={speedup:5.2}x identical={}",
        identical && warm_identical
    );
    Ok(serde_json::json!({
        "id": id,
        "serial_seconds": serial_seconds,
        "parallel_cold_seconds": parallel_seconds,
        "parallel_warm_seconds": warm_seconds,
        "speedup": speedup,
        "warm_cache_hits": warm_report.cache_hits,
        "warm_executed": warm_report.executed,
        "identical": identical && warm_identical,
    }))
}

/// `--bench` mode: per-experiment serial / parallel-cold / parallel-warm
/// wall-clock, written to `<out>/bench.json`.
fn run_bench(args: &Args) -> std::io::Result<()> {
    let jobs = args.jobs.unwrap_or_else(default_workers);
    let ids: Vec<String> = match &args.experiments {
        Some(list) => list.clone(),
        None => suite::all_ids().iter().map(|s| s.to_string()).collect(),
    };
    let cache_dir = args.out.join("bench-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "benchmarking {} experiment{} at scale {} with {jobs} worker{}",
        ids.len(),
        if ids.len() == 1 { "" } else { "s" },
        args.scale,
        if jobs == 1 { "" } else { "s" },
    );
    let mut rows = Vec::new();
    let mut serial_total = 0.0;
    let mut cold_total = 0.0;
    let mut warm_total = 0.0;
    let mut all_identical = true;
    let mut warm_executed_total = 0u64;
    for id in &ids {
        let row = bench_experiment(id, args.scale, jobs, &cache_dir)?;
        serial_total += row["serial_seconds"].as_f64().unwrap_or(0.0);
        cold_total += row["parallel_cold_seconds"].as_f64().unwrap_or(0.0);
        warm_total += row["parallel_warm_seconds"].as_f64().unwrap_or(0.0);
        all_identical &= row["identical"].as_bool().unwrap_or(false);
        warm_executed_total += row["warm_executed"].as_u64().unwrap_or(0);
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    let speedup = serial_total / cold_total.max(1e-9);
    let warm_speedup = serial_total / warm_total.max(1e-9);
    println!(
        "total          serial={serial_total:7.3}s cold={cold_total:7.3}s \
         warm={warm_total:7.3}s speedup={speedup:5.2}x warm-speedup={warm_speedup:5.2}x"
    );
    if !all_identical {
        eprintln!("error: parallel output diverged from serial output");
    }
    if warm_executed_total > 0 {
        eprintln!("error: warm-cache passes still executed {warm_executed_total} job(s)");
    }

    // Parallel speedup is bounded by the host's core count; record it so
    // the numbers stay interpretable (on a 1-core host cold ≈ serial and
    // only the warm-cache pass shows a win).
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bench = serde_json::json!({
        "scale": args.scale,
        "jobs": jobs,
        "host_parallelism": host_parallelism,
        "experiments": rows,
        "totals": {
            "serial_seconds": serial_total,
            "parallel_cold_seconds": cold_total,
            "parallel_warm_seconds": warm_total,
            "speedup": speedup,
            "warm_speedup": warm_speedup,
            "warm_executed": warm_executed_total,
            "identical": all_identical,
        },
    });
    cestim_bench::write_bench(&args.out, &bench)?;
    println!("[bench -> {}]", args.out.join("bench.json").display());
    if !all_identical || warm_executed_total > 0 {
        return Err(std::io::Error::other("bench invariants violated"));
    }
    Ok(())
}

/// Median of a sample (the sample is sorted in place).
fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Median absolute deviation about `center`.
fn mad(xs: &[f64], center: f64) -> f64 {
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&mut dev)
}

/// One timed pass of a workload through the full pipeline. Returns the
/// run's stats and its wall-clock seconds.
fn one_pass(program: &cestim_isa::Program, predictor: PredictorKind) -> (PipelineStats, f64) {
    let t = Instant::now();
    let mut sim = Simulator::new(program, PipelineConfig::paper(), predictor.build_any());
    sim.add_estimator(cestim_core::Jrs::paper_enhanced());
    let stats = sim.run_to_completion();
    (stats, t.elapsed().as_secs_f64())
}

/// Measures one workload × predictor cell: `warmup` untimed passes, then
/// `reps` timed passes; reports median/MAD branches-per-second.
fn measure_cell(
    kind: WorkloadKind,
    predictor: PredictorKind,
    scale: u32,
    warmup: u32,
    reps: u32,
) -> Value {
    let w = kind.build(scale);
    for _ in 0..warmup {
        let _ = one_pass(&w.program, predictor);
    }
    let mut bps = Vec::with_capacity(reps as usize);
    let mut ips = Vec::with_capacity(reps as usize);
    let mut stats = PipelineStats::default();
    for _ in 0..reps {
        let (s, dt) = one_pass(&w.program, predictor);
        bps.push(s.committed_branches as f64 / dt.max(1e-12));
        ips.push(s.committed_insts as f64 / dt.max(1e-12));
        stats = s;
    }
    let med_bps = median(&mut bps.clone());
    let mad_bps = mad(&bps, med_bps);
    let med_ips = median(&mut ips.clone());
    println!(
        "{:10} {:10} br={:9} insts={:10} {:8.3} ± {:6.3} Mbr/s  {:6.1} M inst/s",
        kind.name(),
        predictor.name(),
        stats.committed_branches,
        stats.committed_insts,
        med_bps / 1e6,
        mad_bps / 1e6,
        med_ips / 1e6,
    );
    json!({
        "workload": kind.name(),
        "predictor": predictor.name(),
        "committed_branches": stats.committed_branches,
        "committed_insts": stats.committed_insts,
        "cycles": stats.cycles,
        "bps_reps": bps,
        "median_bps": med_bps,
        "mad_bps": mad_bps,
        "median_ips": med_ips,
    })
}

/// One timed pass of an imported trace through the replay frontend.
/// Mirrors `one_pass` (same pipeline config, same estimator) so trace
/// cells are comparable to live cells in shape, if not in label.
fn one_trace_pass(
    records: &[cestim_trace_io::TraceRecord],
    predictor: PredictorKind,
) -> (PipelineStats, f64) {
    let t = Instant::now();
    let mut sim = TraceSimulator::new(records, PipelineConfig::paper(), predictor.build_any());
    sim.add_estimator(cestim_core::Jrs::paper_enhanced());
    let stats = sim.run_to_completion();
    (stats, t.elapsed().as_secs_f64())
}

/// Measures one imported-trace × predictor cell. The trace is decoded
/// once up front (decode time is not part of the measurement) and the
/// cell's workload is labelled `trace:<file-stem>` so it never aliases a
/// live workload cell in the trajectory or the `--check` gate.
fn measure_trace_cell(
    path: &Path,
    records: &[cestim_trace_io::TraceRecord],
    predictor: PredictorKind,
    warmup: u32,
    reps: u32,
) -> Value {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let label = format!("trace:{stem}");
    for _ in 0..warmup {
        let _ = one_trace_pass(records, predictor);
    }
    let mut bps = Vec::with_capacity(reps as usize);
    let mut ips = Vec::with_capacity(reps as usize);
    let mut stats = PipelineStats::default();
    for _ in 0..reps {
        let (s, dt) = one_trace_pass(records, predictor);
        bps.push(s.committed_branches as f64 / dt.max(1e-12));
        ips.push(s.committed_insts as f64 / dt.max(1e-12));
        stats = s;
    }
    let med_bps = median(&mut bps.clone());
    let mad_bps = mad(&bps, med_bps);
    let med_ips = median(&mut ips.clone());
    println!(
        "{:10} {:10} br={:9} insts={:10} {:8.3} ± {:6.3} Mbr/s  {:6.1} M inst/s",
        label,
        predictor.name(),
        stats.committed_branches,
        stats.committed_insts,
        med_bps / 1e6,
        mad_bps / 1e6,
        med_ips / 1e6,
    );
    json!({
        "workload": label,
        "predictor": predictor.name(),
        "trace_file": path.display().to_string(),
        "trace_hash": cestim_trace_io::content_hash_hex(records),
        "records": records.len(),
        "committed_branches": stats.committed_branches,
        "committed_insts": stats.committed_insts,
        "cycles": stats.cycles,
        "bps_reps": bps,
        "median_bps": med_bps,
        "mad_bps": mad_bps,
        "median_ips": med_ips,
    })
}

/// One pass of the overhead cell: the compress workload on gshare, with
/// span tracing either absent (`spans: None` — the production default,
/// every instrumentation point short-circuits on a disabled check) or
/// fully on (ambient context + phase profiling + span collection).
fn overhead_pass(program: &cestim_isa::Program, spans: Option<&SpanCollector>) -> f64 {
    let t = Instant::now();
    let mut sim = Simulator::new(
        program,
        PipelineConfig::paper(),
        PredictorKind::Gshare.build_any(),
    );
    sim.add_estimator(cestim_core::Jrs::paper_enhanced());
    let _ambient = spans.map(|c| span2::set_ambient(c, SpanId::NONE, "main"));
    if spans.is_some() {
        sim.set_profiling(true);
    }
    let stats = sim.run_to_completion();
    let dt = t.elapsed().as_secs_f64();
    stats.committed_branches as f64 / dt.max(1e-12)
}

/// The tracing A/B overhead cell: interleaved off/on passes of the same
/// workload, reporting median branches/sec for both arms and the relative
/// slowdown of the traced arm. Interleaving (off, on, off, on, ...)
/// instead of batching keeps slow thermal/cache drift out of the A−B
/// difference.
fn measure_overhead(scale: u32, warmup: u32, reps: u32) -> Value {
    let w = WorkloadKind::Compress.build(scale);
    let spans = SpanCollector::new();
    for _ in 0..warmup {
        let _ = overhead_pass(&w.program, None);
        let _ = overhead_pass(&w.program, Some(&spans));
        let _ = spans.drain();
    }
    let mut off = Vec::with_capacity(reps as usize);
    let mut on = Vec::with_capacity(reps as usize);
    let mut span_count = 0usize;
    for _ in 0..reps {
        off.push(overhead_pass(&w.program, None));
        on.push(overhead_pass(&w.program, Some(&spans)));
        span_count = spans.drain().len();
    }
    let med_off = median(&mut off.clone());
    let med_on = median(&mut on.clone());
    let on_overhead_pct = 100.0 * (med_off / med_on.max(1e-12) - 1.0);
    println!(
        "overhead   compress   gshare     off={:8.3} Mbr/s  on={:8.3} Mbr/s  \
         traced-run overhead {:+.2}% ({span_count} spans/run)",
        med_off / 1e6,
        med_on / 1e6,
        on_overhead_pct,
    );
    json!({
        "workload": "compress",
        "predictor": "gshare",
        "off_median_bps": med_off,
        "off_mad_bps": mad(&off, med_off),
        "on_median_bps": med_on,
        "on_mad_bps": mad(&on, med_on),
        "on_overhead_pct": on_overhead_pct,
        "spans_per_run": span_count,
    })
}

/// One optional *instrumented* pass per workload, for `--trace-out`,
/// `--metrics-out`, and `--obs-summary`. Kept out of the timed reps so
/// instrumentation cost never pollutes the recorded figures.
fn run_instrumented(args: &Args) -> std::io::Result<()> {
    let registry = Registry::new();
    let mut trace_writer = match &args.trace_out {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)?;
            }
            Some(TraceWriter::new(std::io::BufWriter::new(
                std::fs::File::create(path)?,
            )))
        }
        None => None,
    };
    let spans = if args.trace_perfetto.is_some() {
        SpanCollector::new()
    } else {
        SpanCollector::disabled()
    };
    let scale_label = args.scale.to_string();
    for k in WorkloadKind::all() {
        let w = k.build(args.scale);
        let mut sim = Simulator::new(
            &w.program,
            PipelineConfig::paper(),
            PredictorKind::Gshare.build_any(),
        );
        sim.add_estimator(cestim_core::Jrs::paper_enhanced());
        if trace_writer.is_some() {
            sim.set_tracer(Tracer::unbounded());
        }
        if args.obs_summary || spans.enabled() {
            sim.set_profiling(true);
        }
        {
            let mut buf = spans.buffer("main");
            let mut root = buf.open("speed.workload", SpanId::NONE, &[]);
            if root.id().is_some() {
                root.label("workload", k.name());
            }
            let _ambient = spans
                .enabled()
                .then(|| span2::set_ambient(&spans, root.id(), "main"));
            let _ = sim.run_to_completion();
            drop(_ambient);
            buf.close(root);
        }
        if let Some(writer) = &mut trace_writer {
            for ev in sim.tracer().events() {
                writer.write(ev)?;
            }
        }
        if args.metrics_out.is_some() || args.prom_out.is_some() {
            sim.export_metrics(
                &registry,
                &[
                    ("workload", k.name()),
                    ("predictor", "gshare"),
                    ("scale", scale_label.as_str()),
                ],
            );
        }
        if args.obs_summary {
            println!("-- {} --", k.name());
            print!("{}", render_timing_table(&sim.phase_timings()));
        }
    }
    if let Some(path) = &args.trace_perfetto {
        let n = cestim_bench::write_perfetto(path, &spans.drain())?;
        println!("[perfetto: {n} spans -> {}]", path.display());
    }
    if let Some(path) = &args.prom_out {
        cestim_bench::write_prometheus(path, &registry.snapshot())?;
        println!("[prometheus -> {}]", path.display());
    }
    if let Some(writer) = trace_writer {
        let n = writer.written();
        writer.finish()?;
        let path = args.trace_out.as_ref().expect("writer implies path");
        println!("[trace: {n} events -> {}]", path.display());
    }
    if let Some(path) = &args.metrics_out {
        cestim_bench::write_metrics(path, &registry.snapshot())?;
        println!("[metrics -> {}]", path.display());
    }
    Ok(())
}

/// Loads a trajectory file, returning its `runs` array (empty when the
/// file does not exist yet).
fn load_trajectory(path: &Path) -> std::io::Result<Vec<Value>> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let doc: Value = serde_json::from_str(&text)
                .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?;
            if doc["schema"] != SPEED_SCHEMA {
                return Err(std::io::Error::other(format!(
                    "{}: unexpected schema {:?} (want {SPEED_SCHEMA:?})",
                    path.display(),
                    doc["schema"]
                )));
            }
            match doc["runs"] {
                Value::Array(ref runs) => Ok(runs.clone()),
                _ => Err(std::io::Error::other(format!(
                    "{}: missing runs array",
                    path.display()
                ))),
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Appends `run` to the trajectory file at `path` (created on first use).
fn append_trajectory(path: &Path, run: Value) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut runs = load_trajectory(path)?;
    runs.push(run);
    let doc = json!({ "schema": SPEED_SCHEMA, "runs": runs });
    let mut text =
        serde_json::to_string_pretty(&doc).map_err(|e| std::io::Error::other(e.to_string()))?;
    text.push('\n');
    std::fs::write(path, text)
}

/// Compares `current` against the last same-scale run in `baseline_path`.
/// Returns the number of regressed cells.
fn check_regression(
    current: &Value,
    baseline_path: &Path,
    tolerance_pct: f64,
) -> std::io::Result<usize> {
    let runs = load_trajectory(baseline_path)?;
    let scale = current["scale"].as_u64();
    let baseline = runs
        .iter()
        .rev()
        .find(|r| r["scale"].as_u64() == scale)
        .ok_or_else(|| {
            std::io::Error::other(format!(
                "{}: no baseline run at scale {}",
                baseline_path.display(),
                scale.unwrap_or(0)
            ))
        })?;

    let cell_key = |c: &Value| {
        (
            c["workload"].as_str().unwrap_or("").to_string(),
            c["predictor"].as_str().unwrap_or("").to_string(),
        )
    };
    let base_cells: std::collections::BTreeMap<_, &Value> = baseline["cells"]
        .as_array()
        .map(|cs| cs.iter().map(|c| (cell_key(c), c)).collect())
        .unwrap_or_default();

    let mut regressed = 0usize;
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for cell in current["cells"].as_array().into_iter().flatten() {
        let Some(base) = base_cells.get(&cell_key(cell)) else {
            continue;
        };
        let base_med = base["median_bps"].as_f64().unwrap_or(0.0);
        let base_mad = base["mad_bps"].as_f64().unwrap_or(0.0);
        let cur_med = cell["median_bps"].as_f64().unwrap_or(0.0);
        let (wl, pred) = cell_key(cell);
        if base_med <= 0.0 || base_mad / base_med > NOISE_GUARD {
            println!(
                "check {wl:10} {pred:10} SKIP (baseline too noisy: MAD {:.0}% of median)",
                100.0 * base_mad / base_med.max(1e-12)
            );
            skipped += 1;
            continue;
        }
        compared += 1;
        let floor = base_med * (1.0 - tolerance_pct / 100.0);
        let ratio = cur_med / base_med;
        if cur_med < floor {
            regressed += 1;
            println!(
                "check {wl:10} {pred:10} REGRESSED {:.3} -> {:.3} Mbr/s ({:.1}% of baseline, floor {:.1}%)",
                base_med / 1e6,
                cur_med / 1e6,
                100.0 * ratio,
                100.0 - tolerance_pct,
            );
        } else {
            println!(
                "check {wl:10} {pred:10} ok        {:.3} -> {:.3} Mbr/s ({:.1}% of baseline)",
                base_med / 1e6,
                cur_med / 1e6,
                100.0 * ratio,
            );
        }
    }
    println!(
        "check: {compared} compared, {skipped} skipped (noise), {regressed} regressed \
         (tolerance {tolerance_pct}%)"
    );
    Ok(regressed)
}

/// Default mode: the workload × predictor speed harness.
fn run_speed(args: &Args) -> std::io::Result<()> {
    println!(
        "speed harness: scale={} reps={} warmup={} predictors={}",
        args.scale,
        args.reps,
        args.warmup,
        args.predictors
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(","),
    );
    let mut cells = Vec::new();
    for &p in &args.predictors {
        for k in WorkloadKind::all() {
            cells.push(measure_cell(k, p, args.scale, args.warmup, args.reps));
        }
    }
    for path in &args.trace_in {
        let bytes = std::fs::read(path)?;
        let records = cestim_trace_io::from_bytes(&bytes)
            .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?;
        for &p in &args.predictors {
            cells.push(measure_trace_cell(
                path,
                &records,
                p,
                args.warmup,
                args.reps,
            ));
        }
    }
    let total_bps: f64 = cells.iter().filter_map(|c| c["median_bps"].as_f64()).sum();
    let total_ips: f64 = cells.iter().filter_map(|c| c["median_ips"].as_f64()).sum();
    println!(
        "total: {:.3} Mbr/s, {:.1} M inst/s (sum of per-cell medians)",
        total_bps / 1e6,
        total_ips / 1e6
    );

    let overhead = args
        .overhead
        .then(|| measure_overhead(args.scale, args.warmup, args.reps));

    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = json!({
        "timestamp_unix": timestamp,
        "scale": args.scale,
        "reps": args.reps,
        "warmup": args.warmup,
        "note": args.note,
        "cells": cells,
        "overhead": overhead,
        "totals": { "median_bps_sum": total_bps, "median_ips_sum": total_ips },
    });

    if args.trace_out.is_some()
        || args.metrics_out.is_some()
        || args.obs_summary
        || args.trace_perfetto.is_some()
        || args.prom_out.is_some()
    {
        run_instrumented(args)?;
    }

    if let Some(path) = &args.json {
        append_trajectory(path, run.clone())?;
        println!("[trajectory -> {}]", path.display());
    }

    if let Some(baseline) = &args.check {
        let regressed = check_regression(&run, baseline, args.tolerance)?;
        if regressed > 0 {
            return Err(std::io::Error::other(format!(
                "{regressed} cell(s) regressed beyond {}% tolerance",
                args.tolerance
            )));
        }
    }

    if let (Some(max), Some(cell)) = (args.overhead_max, run["overhead"].as_object()) {
        let pct = cell
            .get("on_overhead_pct")
            .and_then(Value::as_f64)
            .unwrap_or(f64::INFINITY);
        if pct > max {
            return Err(std::io::Error::other(format!(
                "traced-run overhead {pct:.2}% exceeds --overhead-max {max}%"
            )));
        }
    }
    Ok(())
}

fn run() -> std::io::Result<()> {
    let args = parse_args();
    if args.bench {
        run_bench(&args)
    } else {
        run_speed(&args)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
