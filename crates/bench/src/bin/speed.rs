//! Quick pipeline-throughput smoke check, plus the experiment perf baseline.
//!
//! ```text
//! speed [scale] [--trace-out FILE] [--metrics-out FILE] [--obs-summary]
//! speed [scale] --bench [--jobs N] [--out DIR] [--experiments id,id,...]
//! ```
//!
//! The default mode runs one gshare+JRS pass per workload and prints
//! throughput lines. Tracing and profiling stay fully disabled unless
//! requested, so the default invocation measures the uninstrumented
//! pipeline:
//!
//! * `--trace-out FILE` — record every workload's events into one JSONL
//!   trace (replayable by `cestim-trace`).
//! * `--metrics-out FILE` — export per-workload metrics (labelled by
//!   workload) as one JSON snapshot.
//! * `--obs-summary` — profile pipeline phases and print the wall-clock
//!   table per workload.
//!
//! `--bench` instead times experiment regeneration through the
//! `cestim-exec` engine — serial versus `--jobs N` (cache-cold) versus
//! cache-warm — and writes the machine-readable baseline to
//! `<out>/bench.json`:
//!
//! * `--jobs N` — worker count for the parallel passes (default: the
//!   `CESTIM_JOBS` env var, else available parallelism).
//! * `--out DIR` — output directory (default `results/`); the bench cache
//!   lives under `<out>/bench-cache` and is cleared afterwards.
//! * `--experiments a,b,c` — subset of experiment ids (default: all).

use cestim_bpred::Gshare;
use cestim_exec::{default_workers, CachePolicy, Executor};
use cestim_obs::{render_timing_table, Registry, TraceWriter, Tracer};
use cestim_pipeline::{PipelineConfig, Simulator};
use cestim_sim::suite;
use cestim_workloads::WorkloadKind;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    scale: u32,
    bench: bool,
    jobs: Option<usize>,
    out: PathBuf,
    experiments: Option<Vec<String>>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    obs_summary: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: speed [scale] [--trace-out FILE] [--metrics-out FILE] [--obs-summary]\n\
         \x20      speed [scale] --bench [--jobs N] [--out DIR] [--experiments id,id,...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 4,
        bench: false,
        jobs: None,
        out: PathBuf::from("results"),
        experiments: None,
        trace_out: None,
        metrics_out: None,
        obs_summary: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--bench" => args.bench = true,
            "--jobs" => {
                args.jobs = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--out" => args.out = PathBuf::from(argv.next().unwrap_or_else(|| usage())),
            "--experiments" => {
                let list = argv.next().unwrap_or_else(|| usage());
                args.experiments = Some(list.split(',').map(str::to_string).collect());
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--obs-summary" => args.obs_summary = true,
            "-h" | "--help" => usage(),
            other => match other.parse() {
                Ok(scale) => args.scale = scale,
                Err(_) => usage(),
            },
        }
    }
    args
}

/// Times one experiment three ways — serial (no cache), parallel with a
/// cold cache, parallel again with the warm cache — and checks that the
/// parallel output is byte-identical to the serial one.
fn bench_experiment(
    id: &str,
    scale: u32,
    jobs: usize,
    cache_dir: &std::path::Path,
) -> std::io::Result<serde_json::Value> {
    let serial_exec = Executor::sequential();
    let t = Instant::now();
    let serial = suite::run_experiment_with(&serial_exec, id, scale)
        .ok_or_else(|| std::io::Error::other(format!("unknown experiment '{id}'")))?;
    let serial_seconds = t.elapsed().as_secs_f64();

    // Refresh skips cache reads, so this pass is cold even when an earlier
    // experiment already stored overlapping jobs; it still writes, warming
    // the cache for the third pass.
    let cold_exec = Executor::new(jobs).with_cache(cache_dir, CachePolicy::Refresh)?;
    let t = Instant::now();
    let cold = suite::run_experiment_with(&cold_exec, id, scale).expect("id validated above");
    let parallel_seconds = t.elapsed().as_secs_f64();
    let identical = serial.text == cold.text && serial.json == cold.json;

    let warm_exec = Executor::new(jobs).with_cache(cache_dir, CachePolicy::ReadWrite)?;
    let t = Instant::now();
    let warm = suite::run_experiment_with(&warm_exec, id, scale).expect("id validated above");
    let warm_seconds = t.elapsed().as_secs_f64();
    let warm_report = warm_exec.report();
    let warm_identical = serial.text == warm.text;

    let speedup = serial_seconds / parallel_seconds.max(1e-9);
    println!(
        "{id:14} serial={serial_seconds:7.3}s jobs={jobs} cold={parallel_seconds:7.3}s \
         warm={warm_seconds:7.3}s speedup={speedup:5.2}x identical={}",
        identical && warm_identical
    );
    Ok(serde_json::json!({
        "id": id,
        "serial_seconds": serial_seconds,
        "parallel_cold_seconds": parallel_seconds,
        "parallel_warm_seconds": warm_seconds,
        "speedup": speedup,
        "warm_cache_hits": warm_report.cache_hits,
        "warm_executed": warm_report.executed,
        "identical": identical && warm_identical,
    }))
}

/// `--bench` mode: per-experiment serial / parallel-cold / parallel-warm
/// wall-clock, written to `<out>/bench.json`.
fn run_bench(args: &Args) -> std::io::Result<()> {
    let jobs = args.jobs.unwrap_or_else(default_workers);
    let ids: Vec<String> = match &args.experiments {
        Some(list) => list.clone(),
        None => suite::all_ids().iter().map(|s| s.to_string()).collect(),
    };
    let cache_dir = args.out.join("bench-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "benchmarking {} experiment{} at scale {} with {jobs} worker{}",
        ids.len(),
        if ids.len() == 1 { "" } else { "s" },
        args.scale,
        if jobs == 1 { "" } else { "s" },
    );
    let mut rows = Vec::new();
    let mut serial_total = 0.0;
    let mut cold_total = 0.0;
    let mut warm_total = 0.0;
    let mut all_identical = true;
    let mut warm_executed_total = 0u64;
    for id in &ids {
        let row = bench_experiment(id, args.scale, jobs, &cache_dir)?;
        serial_total += row["serial_seconds"].as_f64().unwrap_or(0.0);
        cold_total += row["parallel_cold_seconds"].as_f64().unwrap_or(0.0);
        warm_total += row["parallel_warm_seconds"].as_f64().unwrap_or(0.0);
        all_identical &= row["identical"].as_bool().unwrap_or(false);
        warm_executed_total += row["warm_executed"].as_u64().unwrap_or(0);
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    let speedup = serial_total / cold_total.max(1e-9);
    let warm_speedup = serial_total / warm_total.max(1e-9);
    println!(
        "total          serial={serial_total:7.3}s cold={cold_total:7.3}s \
         warm={warm_total:7.3}s speedup={speedup:5.2}x warm-speedup={warm_speedup:5.2}x"
    );
    if !all_identical {
        eprintln!("error: parallel output diverged from serial output");
    }
    if warm_executed_total > 0 {
        eprintln!("error: warm-cache passes still executed {warm_executed_total} job(s)");
    }

    // Parallel speedup is bounded by the host's core count; record it so
    // the numbers stay interpretable (on a 1-core host cold ≈ serial and
    // only the warm-cache pass shows a win).
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bench = serde_json::json!({
        "scale": args.scale,
        "jobs": jobs,
        "host_parallelism": host_parallelism,
        "experiments": rows,
        "totals": {
            "serial_seconds": serial_total,
            "parallel_cold_seconds": cold_total,
            "parallel_warm_seconds": warm_total,
            "speedup": speedup,
            "warm_speedup": warm_speedup,
            "warm_executed": warm_executed_total,
            "identical": all_identical,
        },
    });
    cestim_bench::write_bench(&args.out, &bench)?;
    println!("[bench -> {}]", args.out.join("bench.json").display());
    if !all_identical || warm_executed_total > 0 {
        return Err(std::io::Error::other("bench invariants violated"));
    }
    Ok(())
}

fn run_speed(args: &Args) -> std::io::Result<()> {
    let registry = Registry::new();
    let mut trace_writer = match &args.trace_out {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)?;
            }
            Some(TraceWriter::new(std::io::BufWriter::new(
                std::fs::File::create(path)?,
            )))
        }
        None => None,
    };
    let scale_label = args.scale.to_string();

    for k in WorkloadKind::all() {
        let w = k.build(args.scale);
        let t = Instant::now();
        let mut sim = Simulator::new(
            &w.program,
            PipelineConfig::paper(),
            Box::new(Gshare::new(12)),
        );
        sim.add_estimator(Box::new(cestim_core::Jrs::paper_enhanced()));
        if trace_writer.is_some() {
            sim.set_tracer(Tracer::unbounded());
        }
        if args.obs_summary {
            sim.set_profiling(true);
        }
        let stats = sim.run_to_completion();
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{:10} committed={:9} fetched={:9} br={:8} acc={:.3} ratio={:.2} ipc={:.2} {:5.1}M inst/s",
            k.name(),
            stats.committed_insts,
            stats.fetched_insts,
            stats.committed_branches,
            stats.accuracy_committed(),
            stats.speculation_ratio(),
            stats.ipc(),
            stats.fetched_insts as f64 / dt / 1e6
        );
        if let Some(writer) = &mut trace_writer {
            for ev in sim.tracer().events() {
                writer.write(ev)?;
            }
        }
        if args.metrics_out.is_some() {
            sim.export_metrics(
                &registry,
                &[
                    ("workload", k.name()),
                    ("predictor", "gshare"),
                    ("scale", scale_label.as_str()),
                ],
            );
        }
        if args.obs_summary {
            print!("{}", render_timing_table(&sim.phase_timings()));
        }
    }

    if let Some(writer) = trace_writer {
        let n = writer.written();
        writer.finish()?;
        let path = args.trace_out.as_ref().expect("writer implies path");
        println!("[trace: {n} events -> {}]", path.display());
    }
    if let Some(path) = &args.metrics_out {
        cestim_bench::write_metrics(path, &registry.snapshot())?;
        println!("[metrics -> {}]", path.display());
    }
    Ok(())
}

fn run() -> std::io::Result<()> {
    let args = parse_args();
    if args.bench {
        run_bench(&args)
    } else {
        run_speed(&args)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
