//! Quick pipeline-throughput smoke check: one gshare+JRS pass per workload.
//!
//! ```text
//! speed [scale]
//! ```

use cestim_bpred::Gshare;
use cestim_pipeline::{PipelineConfig, Simulator};
use cestim_workloads::WorkloadKind;
use std::time::Instant;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    for k in WorkloadKind::all() {
        let w = k.build(scale);
        let t = Instant::now();
        let mut sim = Simulator::new(
            &w.program,
            PipelineConfig::paper(),
            Box::new(Gshare::new(12)),
        );
        sim.add_estimator(Box::new(cestim_core::Jrs::paper_enhanced()));
        let stats = sim.run_to_completion();
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{:10} committed={:9} fetched={:9} br={:8} acc={:.3} ratio={:.2} ipc={:.2} {:5.1}M inst/s",
            k.name(),
            stats.committed_insts,
            stats.fetched_insts,
            stats.committed_branches,
            stats.accuracy_committed(),
            stats.speculation_ratio(),
            stats.ipc(),
            stats.fetched_insts as f64 / dt / 1e6
        );
    }
}
