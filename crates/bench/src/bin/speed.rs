//! Quick pipeline-throughput smoke check: one gshare+JRS pass per workload.
//!
//! ```text
//! speed [scale] [--trace-out FILE] [--metrics-out FILE] [--obs-summary]
//! ```
//!
//! Tracing and profiling stay fully disabled unless requested, so the
//! default invocation measures the uninstrumented pipeline:
//!
//! * `--trace-out FILE` — record every workload's events into one JSONL
//!   trace (replayable by `cestim-trace`).
//! * `--metrics-out FILE` — export per-workload metrics (labelled by
//!   workload) as one JSON snapshot.
//! * `--obs-summary` — profile pipeline phases and print the wall-clock
//!   table per workload.

use cestim_bpred::Gshare;
use cestim_obs::{render_timing_table, Registry, TraceWriter, Tracer};
use cestim_pipeline::{PipelineConfig, Simulator};
use cestim_workloads::WorkloadKind;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    scale: u32,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    obs_summary: bool,
}

fn usage() -> ! {
    eprintln!("usage: speed [scale] [--trace-out FILE] [--metrics-out FILE] [--obs-summary]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 4,
        trace_out: None,
        metrics_out: None,
        obs_summary: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--obs-summary" => args.obs_summary = true,
            "-h" | "--help" => usage(),
            other => match other.parse() {
                Ok(scale) => args.scale = scale,
                Err(_) => usage(),
            },
        }
    }
    args
}

fn run() -> std::io::Result<()> {
    let args = parse_args();
    let registry = Registry::new();
    let mut trace_writer = match &args.trace_out {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)?;
            }
            Some(TraceWriter::new(std::io::BufWriter::new(
                std::fs::File::create(path)?,
            )))
        }
        None => None,
    };
    let scale_label = args.scale.to_string();

    for k in WorkloadKind::all() {
        let w = k.build(args.scale);
        let t = Instant::now();
        let mut sim = Simulator::new(
            &w.program,
            PipelineConfig::paper(),
            Box::new(Gshare::new(12)),
        );
        sim.add_estimator(Box::new(cestim_core::Jrs::paper_enhanced()));
        if trace_writer.is_some() {
            sim.set_tracer(Tracer::unbounded());
        }
        if args.obs_summary {
            sim.set_profiling(true);
        }
        let stats = sim.run_to_completion();
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{:10} committed={:9} fetched={:9} br={:8} acc={:.3} ratio={:.2} ipc={:.2} {:5.1}M inst/s",
            k.name(),
            stats.committed_insts,
            stats.fetched_insts,
            stats.committed_branches,
            stats.accuracy_committed(),
            stats.speculation_ratio(),
            stats.ipc(),
            stats.fetched_insts as f64 / dt / 1e6
        );
        if let Some(writer) = &mut trace_writer {
            for ev in sim.tracer().events() {
                writer.write(ev)?;
            }
        }
        if args.metrics_out.is_some() {
            sim.export_metrics(
                &registry,
                &[
                    ("workload", k.name()),
                    ("predictor", "gshare"),
                    ("scale", scale_label.as_str()),
                ],
            );
        }
        if args.obs_summary {
            print!("{}", render_timing_table(&sim.phase_timings()));
        }
    }

    if let Some(writer) = trace_writer {
        let n = writer.written();
        writer.finish()?;
        let path = args.trace_out.as_ref().expect("writer implies path");
        println!("[trace: {n} events -> {}]", path.display());
    }
    if let Some(path) = &args.metrics_out {
        cestim_bench::write_metrics(path, &registry.snapshot())?;
        println!("[metrics -> {}]", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
