//! Seeded differential fuzzer over the whole simulator stack.
//!
//! ```text
//! fuzz [--seed N] [--iters N] [--time-budget SECS] [--oracle NAME|all]
//!      [--out DIR] [--corpus DIR|none] [--fault N] [--expect-failure]
//!      [--max-failures N] [--shrink-budget N]
//!      [--trace-perfetto FILE] [--prom-out FILE]
//! ```
//!
//! Each iteration draws a valid-by-construction random program from the
//! seed's child stream and runs it through the selected `cestim-qa`
//! differential oracles (`arch`, `replay`, `exec`, `quadrant`, `trace`,
//! or `all`).
//! The opt-in `resilience` oracle (not part of `all` — it sleeps and
//! touches disk) additionally chaos-tests the executor's fault handling:
//! `fuzz --oracle resilience --iters 5`.
//! Failures are shrunk to minimal reproducers and persisted under the
//! corpus directory (default `<out>/qa/corpus`), replayable with
//! `repro --qa-replay <dir>`.
//!
//! `--fault N` arms the deliberate commit-stream fault (flip every Nth
//! committed branch; also reachable via `CESTIM_QA_FAULT=flip-commit:N`)
//! so the failure path can be exercised end to end; pair it with
//! `--expect-failure`, which inverts the exit status.
//!
//! Every run writes `<out>/telemetry.json` containing the deterministic
//! fuzz report plus the `qa.*` metric snapshot — same seed, same bytes
//! (when no `--time-budget` is set).
//!
//! `--trace-perfetto FILE` records causal spans for every simulator pass
//! the oracles make (under a `fuzz` root span) as Perfetto-loadable JSON;
//! `--prom-out FILE` writes the `qa.*` metrics as Prometheus text
//! exposition. See `docs/OBSERVABILITY.md`.

use cestim_obs::span2::{self, SpanCollector, SpanId};
use cestim_obs::Registry;
use cestim_qa::{FaultSpec, FuzzConfig, OracleKind};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    cfg: FuzzConfig,
    out: PathBuf,
    expect_failure: bool,
    trace_perfetto: Option<PathBuf>,
    prom_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed N] [--iters N] [--time-budget SECS] [--oracle NAME|all]\n\
         \x20           [--out DIR] [--corpus DIR|none] [--fault N] [--expect-failure]\n\
         \x20           [--max-failures N] [--shrink-budget N]\n\
         \x20           [--trace-perfetto FILE] [--prom-out FILE]\n\
         oracles: {} all | resilience (opt-in, not part of `all`)",
        OracleKind::ALL.map(|k| k.name()).join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut cfg = FuzzConfig {
        iters: 1000,
        fault: FaultSpec::from_env(),
        ..FuzzConfig::default()
    };
    let mut out = PathBuf::from("results");
    let mut corpus: Option<Option<PathBuf>> = None;
    let mut oracles = Vec::new();
    let mut expect_failure = false;
    let mut trace_perfetto = None;
    let mut prom_out = None;

    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        let num = |argv: &mut dyn Iterator<Item = String>| -> u64 {
            argv.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--seed" => cfg.seed = num(&mut argv),
            "--iters" => cfg.iters = num(&mut argv),
            "--time-budget" => cfg.time_budget = Some(Duration::from_secs(num(&mut argv))),
            "--fault" => cfg.fault = FaultSpec::flip_every(num(&mut argv)),
            "--max-failures" => cfg.max_failures = num(&mut argv),
            "--shrink-budget" => cfg.shrink_budget = num(&mut argv),
            "--oracle" => match argv.next().as_deref() {
                Some("all") => oracles.extend(OracleKind::ALL),
                Some(name) => match OracleKind::from_name(name) {
                    Some(k) => oracles.push(k),
                    None => usage(),
                },
                None => usage(),
            },
            "--out" => out = PathBuf::from(argv.next().unwrap_or_else(|| usage())),
            "--corpus" => match argv.next().as_deref() {
                Some("none") => corpus = Some(None),
                Some(dir) => corpus = Some(Some(PathBuf::from(dir))),
                None => usage(),
            },
            "--expect-failure" => expect_failure = true,
            "--trace-perfetto" => {
                trace_perfetto = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            "--prom-out" => {
                prom_out = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage())));
            }
            _ => usage(),
        }
    }
    cfg.oracles = if oracles.is_empty() {
        OracleKind::ALL.to_vec()
    } else {
        oracles
    };
    cfg.corpus_dir = match corpus {
        Some(dir) => dir,
        None => Some(out.join("qa").join("corpus")),
    };
    Args {
        cfg,
        out,
        expect_failure,
        trace_perfetto,
        prom_out,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let registry = Registry::new();
    // With a Perfetto sink requested, every simulator pass an oracle makes
    // records causal spans under one `fuzz` root.
    let spans = if args.trace_perfetto.is_some() {
        SpanCollector::new()
    } else {
        SpanCollector::disabled()
    };
    let mut span_buf = spans.buffer("main");
    let root_span = span_buf.open("fuzz", SpanId::NONE, &[]);
    let ambient = spans
        .enabled()
        .then(|| span2::set_ambient(&spans, root_span.id(), "main"));
    let report = match cestim_qa::run_fuzz(&args.cfg, &registry) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: fuzz run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    drop(ambient);
    span_buf.close(root_span);
    span_buf.flush();
    if let Some(path) = &args.trace_perfetto {
        match cestim_bench::write_perfetto(path, &spans.drain()) {
            Ok(n) => println!("[perfetto: {n} spans -> {}]", path.display()),
            Err(e) => {
                eprintln!("error: failed to write perfetto trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.prom_out {
        match cestim_bench::write_prometheus(path, &registry.snapshot()) {
            Ok(()) => println!("[prometheus -> {}]", path.display()),
            Err(e) => {
                eprintln!("error: failed to write prometheus exposition: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "fuzz: seed={} iterations={}{}",
        report.seed,
        report.iterations,
        if report.stopped_early {
            " (stopped early)"
        } else {
            ""
        }
    );
    for tally in &report.oracles {
        println!(
            "  oracle {:10} {} pass / {} fail",
            tally.oracle, tally.passes, tally.failures
        );
    }
    for f in &report.failures {
        println!(
            "  FAILURE iter={} oracle={} shrunk {} -> {} nodes ({} insts, {} steps){}",
            f.iteration,
            f.oracle,
            f.nodes_before,
            f.nodes_after,
            f.insts,
            f.shrink_steps,
            match &f.corpus_file {
                Some(name) => format!(" -> {name}"),
                None => String::new(),
            }
        );
        println!("    {}", f.detail);
    }

    let telemetry = serde_json::json!({
        "qa": {
            "report": report,
            "metrics": registry.snapshot(),
        },
    });
    if let Err(e) = cestim_bench::write_telemetry(&args.out, &telemetry) {
        eprintln!("error: failed to write telemetry: {e}");
        return ExitCode::FAILURE;
    }

    match (report.clean(), args.expect_failure) {
        (true, false) => ExitCode::SUCCESS,
        (false, true) => {
            println!("fuzz: failure expected and observed");
            ExitCode::SUCCESS
        }
        (true, true) => {
            eprintln!("error: --expect-failure set but every oracle passed");
            ExitCode::FAILURE
        }
        (false, false) => {
            eprintln!("error: {} oracle failure(s)", report.failures.len());
            ExitCode::FAILURE
        }
    }
}
