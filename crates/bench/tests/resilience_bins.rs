//! End-to-end checks of the resilience surface of the `repro` bin:
//! a chaos run must fail partially (non-zero exit, failure manifest in
//! `telemetry.json`, survivors completed), a transient fault plan plus
//! retries must converge to byte-identical artifacts and exit zero, and
//! an interrupted run resumed with `--resume` must reproduce the
//! uninterrupted artifacts without re-executing journaled jobs.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cestim-resilience-bins-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repro(out: &Path, extra: &[&str]) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "1", "--jobs", "4", "table1"])
        .arg("--out")
        .arg(out)
        .args(extra)
        .status()
        .expect("spawn repro")
}

fn read_telemetry(out: &Path) -> Value {
    let text = std::fs::read_to_string(out.join("telemetry.json")).expect("telemetry.json");
    serde_json::from_str(&text).expect("telemetry parses")
}

fn executor_stat(t: &Value, name: &str) -> u64 {
    t.get("executor")
        .and_then(|e| e.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("executor.{name} missing from telemetry"))
}

fn artifacts(out: &Path) -> Vec<(String, Vec<u8>)> {
    ["table1.txt", "table1.json"]
        .iter()
        .map(|f| {
            (
                f.to_string(),
                std::fs::read(out.join(f)).unwrap_or_else(|e| panic!("read {f}: {e}")),
            )
        })
        .collect()
}

#[test]
fn chaos_run_fails_partially_with_manifest() {
    let out = temp_dir("chaos");
    // Arm the plan through the environment: the same path the CI
    // chaos-smoke job uses.
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "1", "--jobs", "4", "table1"])
        .arg("--out")
        .arg(&out)
        .env("CESTIM_EXEC_FAULT", "panic:7")
        .status()
        .expect("spawn repro");
    assert!(!status.success(), "chaos run must exit non-zero");

    let t = read_telemetry(&out);
    assert_eq!(t.get("fault_plan").and_then(Value::as_str), Some("panic:7"));
    assert!(executor_stat(&t, "panics_caught") > 0, "panics were caught");
    assert!(
        executor_stat(&t, "executed") > 0,
        "non-faulted jobs still ran"
    );

    let failures = t
        .get("failures")
        .and_then(Value::as_array)
        .expect("failure manifest");
    assert_eq!(failures.len(), 1, "one failed experiment");
    let f = &failures[0];
    assert_eq!(f.get("id").and_then(Value::as_str), Some("table1"));
    let errors = f.get("errors").and_then(Value::as_array).expect("errors");
    assert!(!errors.is_empty(), "manifest lists per-job errors");
    for e in errors {
        assert_eq!(e.get("key").and_then(Value::as_str).map(str::len), Some(32));
        assert_eq!(e.get("kind").and_then(Value::as_str), Some("Panicked"));
        let msg = e.get("message").and_then(Value::as_str).unwrap_or("");
        assert!(msg.contains("injected fault"), "got message {msg:?}");
    }
    std::fs::remove_dir_all(&out).unwrap();
}

#[test]
fn retried_transient_faults_converge_and_exit_zero() {
    let (clean, healed) = (temp_dir("retry-clean"), temp_dir("retry-healed"));
    assert!(repro(&clean, &[]).success(), "fault-free run");
    let status = repro(&healed, &["--fault", "panic:3", "--retries", "2"]);
    assert!(
        status.success(),
        "retried-then-succeeded suite must exit zero"
    );

    assert_eq!(
        artifacts(&clean),
        artifacts(&healed),
        "healed artifacts must be byte-identical to the fault-free run"
    );
    let t = read_telemetry(&healed);
    assert!(executor_stat(&t, "retries") > 0, "retries were taken");
    assert!(executor_stat(&t, "panics_caught") > 0);
    assert_eq!(
        t.get("failures").and_then(Value::as_array).map(Vec::len),
        Some(0),
        "no entries in the failure manifest"
    );
    for dir in [&clean, &healed] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn interrupted_run_resumes_byte_identical() {
    let (clean, out) = (temp_dir("resume-clean"), temp_dir("resume"));
    assert!(repro(&clean, &[]).success(), "fault-free run");

    // First run "dies" partway: the injected faults abort the experiment
    // after some jobs have been journaled and cached.
    let status = repro(&out, &["--fault", "panic:3"]);
    assert!(!status.success(), "interrupted run must exit non-zero");

    let status = repro(&out, &["--resume"]);
    assert!(status.success(), "resumed run must exit zero");
    assert_eq!(
        artifacts(&clean),
        artifacts(&out),
        "resumed artifacts must be byte-identical to an uninterrupted run"
    );
    let t = read_telemetry(&out);
    assert_eq!(t.get("resumed").and_then(Value::as_bool), Some(true));
    let resumed = executor_stat(&t, "jobs_resumed");
    assert!(resumed > 0, "journaled jobs were replayed from cache");
    assert_eq!(
        executor_stat(&t, "cache_hits"),
        resumed,
        "every resumed job came back as a cache hit"
    );
    assert_eq!(
        executor_stat(&t, "submitted"),
        resumed + executor_stat(&t, "executed"),
        "no journaled job was re-executed"
    );

    // A second resume skips the whole experiment via the journal.
    let status = repro(&out, &["--resume"]);
    assert!(status.success());
    let t = read_telemetry(&out);
    assert_eq!(executor_stat(&t, "submitted"), 0, "experiment skipped");
    for dir in [&clean, &out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}
