//! End-to-end checks of the QA tooling surface: the `fuzz` bin and
//! `repro --qa-replay` must emit `qa.*` telemetry (`qa.iterations`,
//! `qa.shrink_steps`, per-oracle pass counters) into `telemetry.json`,
//! fuzzing must be deterministic per seed, and an injected pipeline fault
//! must be caught and shrunk to a small persisted reproducer.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cestim-qa-bins-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read_telemetry(out: &Path) -> Value {
    let text = std::fs::read_to_string(out.join("telemetry.json")).expect("telemetry.json");
    serde_json::from_str(&text).expect("telemetry parses")
}

/// Counter value of the first metric with this name in a snapshot block.
fn counter(metrics: &Value, name: &str, label: Option<(&str, &str)>) -> Option<u64> {
    metrics.get("metrics")?.as_array()?.iter().find_map(|m| {
        if m.get("name")?.as_str()? != name {
            return None;
        }
        if let Some((k, v)) = label {
            let labels = m.get("labels")?.as_array()?;
            let hit = labels.iter().any(|pair| {
                pair.as_array().is_some_and(|p| {
                    p.len() == 2 && p[0].as_str() == Some(k) && p[1].as_str() == Some(v)
                })
            });
            if !hit {
                return None;
            }
        }
        m.get("value")?.get("Counter")?.as_u64()
    })
}

#[test]
fn fuzz_emits_qa_telemetry_and_is_deterministic() {
    let (out1, out2) = (temp_dir("fuzz-a"), temp_dir("fuzz-b"));
    for out in [&out1, &out2] {
        let status = Command::new(env!("CARGO_BIN_EXE_fuzz"))
            .args(["--seed", "3", "--iters", "40", "--oracle", "all"])
            .arg("--out")
            .arg(out)
            .status()
            .expect("spawn fuzz");
        assert!(status.success(), "fuzz exited with {status}");
    }
    let a = std::fs::read_to_string(out1.join("telemetry.json")).unwrap();
    let b = std::fs::read_to_string(out2.join("telemetry.json")).unwrap();
    assert_eq!(a, b, "same seed must produce byte-identical telemetry");

    let t = read_telemetry(&out1);
    let qa = t.get("qa").expect("qa block");
    let report = qa.get("report").expect("report");
    assert_eq!(report.get("iterations").and_then(Value::as_u64), Some(40));
    let metrics = qa.get("metrics").expect("metrics snapshot");
    assert_eq!(counter(metrics, "qa.iterations", None), Some(40));
    assert_eq!(counter(metrics, "qa.shrink_steps", None), Some(0));
    assert_eq!(counter(metrics, "qa.corpus.writes", None), Some(0));
    for oracle in ["arch", "replay", "exec", "quadrant"] {
        assert_eq!(
            counter(metrics, "qa.oracle.pass", Some(("oracle", oracle))),
            Some(40),
            "per-oracle pass counter for {oracle}"
        );
    }
    for out in [&out1, &out2] {
        std::fs::remove_dir_all(out).unwrap();
    }
}

#[test]
fn injected_fault_is_shrunk_persisted_and_replayable() {
    let out = temp_dir("fault");
    let status = Command::new(env!("CARGO_BIN_EXE_fuzz"))
        .args(["--seed", "7", "--iters", "60", "--oracle", "arch"])
        .args(["--fault", "1", "--expect-failure"])
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn fuzz");
    assert!(status.success(), "faulted fuzz run should report failure");

    // Exactly one minimised reproducer, small enough to read by hand.
    let corpus = out.join("qa").join("corpus");
    let entries: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .expect("corpus dir")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "one corpus write expected");
    let entry: Value =
        serde_json::from_str(&std::fs::read_to_string(&entries[0]).unwrap()).unwrap();
    let insts = entry.get("insts").and_then(Value::as_u64).unwrap();
    assert!(
        insts <= 20,
        "reproducer has {insts} instructions, want <= 20"
    );

    // Replaying the corpus (fault disarmed) passes and emits qa.* metrics.
    let replay_out = temp_dir("replay");
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--qa-replay")
        .arg(&corpus)
        .arg("--out")
        .arg(&replay_out)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro --qa-replay exited with {status}");
    let t = read_telemetry(&replay_out);
    let metrics = t.get("qa").and_then(|q| q.get("metrics")).expect("metrics");
    assert_eq!(counter(metrics, "qa.iterations", None), Some(1));
    assert!(counter(metrics, "qa.shrink_steps", None).unwrap() > 0);
    assert_eq!(counter(metrics, "qa.replay.pass", None), Some(1));
    assert_eq!(counter(metrics, "qa.replay.fail", None), Some(0));
    assert_eq!(
        counter(metrics, "qa.oracle.pass", Some(("oracle", "arch"))),
        Some(1)
    );
    std::fs::remove_dir_all(&out).unwrap();
    std::fs::remove_dir_all(&replay_out).unwrap();
}
