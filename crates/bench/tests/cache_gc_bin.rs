//! End-to-end check of `repro --cache-gc`: a standalone sweep must
//! remove cache entries written under an older job schema and leave
//! current-schema entries untouched.

use cestim_exec::{CacheKey, DiskCache};
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cestim-cache-gc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cache_gc_removes_stale_and_keeps_fresh() {
    let out = temp_dir("sweep");
    let cache_dir = out.join("cache");
    let cache = DiskCache::open(&cache_dir).expect("open cache");

    // One entry under the live schema, two under a long-dead one.
    let fresh = CacheKey {
        schema: cestim_sim::sim_schema_salt(),
        content: 1,
    };
    cache.store(&fresh, "fresh", &42u64).expect("store fresh");
    for content in [2u64, 3] {
        let stale = CacheKey {
            schema: 0xdead_beef,
            content,
        };
        cache.store(&stale, "stale", &7u64).expect("store stale");
    }
    assert_eq!(cache.len().expect("len"), 3);

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--cache-gc")
        .arg("--out")
        .arg(&out)
        .output()
        .expect("spawn repro");
    assert!(output.status.success(), "cache-gc run must exit zero");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("removed 2 stale entries"),
        "sweep must report the stale entries: {stdout}"
    );

    // The stale entries are gone; the fresh one still loads.
    assert_eq!(cache.len().expect("len"), 1);
    let kept: Option<u64> = cache.load(&fresh);
    assert_eq!(kept, Some(42), "fresh entry must survive the sweep");

    // A second sweep is a no-op.
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--cache-gc")
        .arg("--cache-dir")
        .arg(&cache_dir)
        .output()
        .expect("spawn repro");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("removed 0 stale entries"),
        "second sweep must be a no-op: {stdout}"
    );
    assert_eq!(cache.len().expect("len"), 1);

    let _ = std::fs::remove_dir_all(&out);
}
