//! A resilient TCP client for the serve protocol.
//!
//! [`ServeClient`] assumes the network is hostile — connections drop,
//! lines are torn, responses vanish — and heals by construction:
//!
//! * **Deterministic retry.** Failed attempts (I/O errors, EOF,
//!   response timeouts, rejections, execution errors) are retried under
//!   exec's [`RetryPolicy`]: exponential backoff whose jitter is keyed
//!   on the job's cache key and attempt number, so a given (job,
//!   attempt) always waits the same time — reproducible load patterns
//!   even through chaos.
//! * **Idempotent re-submission.** Jobs are content-addressed: a
//!   re-submitted job hashes to the same [`cestim_exec::CacheKey`], so
//!   the server serves the duplicate from its result cache and every
//!   attempt observes a byte-identical payload. Retrying is therefore
//!   always safe.
//! * **Hedged requests.** Optionally, an attempt that has not completed
//!   after a delay (the larger of the configured floor and the observed
//!   completion p99) sends a duplicate request with a distinguishable
//!   id; whichever copy completes first wins. Tail latency from one
//!   slow shard or one chaos-delayed line stops dominating.
//! * **Garbage tolerance.** Unparseable lines, responses for unknown
//!   ids, and `error` responses without an id are counted and skipped,
//!   never fatal.

use crate::overload::WaitWindow;
use crate::protocol::{parse_response, render_request, Request, Response};
use cestim_exec::{Job, RetryPolicy};
use cestim_sim::ExecJob;
use serde::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server (or chaos proxy) address.
    pub addr: SocketAddr,
    /// Client identity sent with every run request (fair-queuing lane).
    pub client: String,
    /// Scheduling priority (1..=100).
    pub priority: u32,
    /// Per-request deadline forwarded to the server (0 = none).
    pub deadline_ms: u64,
    /// Retry/backoff policy across attempts.
    pub retry: RetryPolicy,
    /// How long one attempt waits for progress before being abandoned.
    /// The timer restarts whenever a response for the request arrives,
    /// so long executions are not cut off mid-run.
    pub recv_timeout: Duration,
    /// Hedging floor: `None` disables hedging; `Some(d)` sends a
    /// duplicate request once an attempt has waited `max(d, observed
    /// completion p99)` without completing.
    pub hedge_after: Option<Duration>,
}

impl ClientConfig {
    /// A sane default aimed at `addr`: 8 attempts, 2s progress timeout,
    /// no deadline, no hedging.
    pub fn new(addr: SocketAddr) -> ClientConfig {
        ClientConfig {
            addr,
            client: "resilient".to_string(),
            priority: 1,
            deadline_ms: 0,
            retry: RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            },
            recv_timeout: Duration::from_secs(2),
            hedge_after: None,
        }
    }
}

/// Cumulative client-side resilience counters (the client half of the
/// `serve.hedge.*` story; server counters live in the registry).
#[derive(Debug, Default, Clone)]
pub struct ClientReport {
    /// Requests completed with a payload.
    pub completed: u64,
    /// Total attempts sent (including the first of each request).
    pub attempts: u64,
    /// Reconnections after an I/O failure or EOF.
    pub reconnects: u64,
    /// Rejections observed (queue-full / shedding / breaker / deadline).
    pub rejected: u64,
    /// Execution `error` responses observed for our ids.
    pub exec_errors: u64,
    /// Unparseable or unattributable lines skipped.
    pub garbage_lines: u64,
    /// Hedged duplicates sent.
    pub hedges_sent: u64,
    /// Requests whose hedged copy completed first.
    pub hedge_wins: u64,
}

/// Suffix appended to a request id for its hedged duplicate.
const HEDGE_SUFFIX: &str = "~h";

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Partial line carried across timeout slices: a read timeout can
    /// land mid-line, and the bytes already consumed from the socket
    /// must survive until the line's newline arrives.
    pending: Vec<u8>,
}

/// The resilient client. Not thread-safe; one instance per submitting
/// thread (each holds its own connection).
pub struct ServeClient {
    cfg: ClientConfig,
    conn: Option<Conn>,
    latencies: WaitWindow,
    report: ClientReport,
}

/// How often the receive loop wakes to check hedge/abandon timers.
const POLL_SLICE: Duration = Duration::from_millis(25);

impl ServeClient {
    /// A client for `cfg.addr`; connects lazily on first use.
    pub fn new(cfg: ClientConfig) -> ServeClient {
        ServeClient {
            cfg,
            conn: None,
            latencies: WaitWindow::new(),
            report: ClientReport::default(),
        }
    }

    /// Cumulative resilience counters.
    pub fn report(&self) -> &ClientReport {
        &self.report
    }

    /// Runs one job to a byte-stable payload, healing connection drops,
    /// torn lines, rejections, and transient execution failures by
    /// deterministic retry (and optional hedging).
    ///
    /// # Errors
    ///
    /// Returns an error only once the retry budget is exhausted.
    pub fn run_job(&mut self, id: &str, job: &ExecJob) -> io::Result<Value> {
        let key = job.cache_key();
        let mut attempt = 1u32;
        loop {
            self.report.attempts += 1;
            match self.attempt_job(id, job) {
                Ok(payload) => {
                    self.report.completed += 1;
                    return Ok(payload);
                }
                Err(failure) => {
                    self.drop_conn_if(&failure);
                    if !self.cfg.retry.allows_retry(attempt) {
                        return Err(io::Error::other(format!(
                            "request `{id}` failed after {attempt} attempts: {}",
                            failure.describe()
                        )));
                    }
                    std::thread::sleep(self.cfg.retry.backoff(attempt, &key));
                    attempt += 1;
                }
            }
        }
    }

    /// Sends a `stats` request and returns the fields object.
    ///
    /// # Errors
    ///
    /// Returns an error when no response arrives within the retry budget.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.control(Request::Stats).map(|resp| match resp {
            Response::Stats(fields) => fields,
            _ => Value::Null,
        })
    }

    /// Sends a `health` request; `Ok(true)` when the server is healthy.
    ///
    /// # Errors
    ///
    /// Returns an error when no response arrives within the retry budget.
    pub fn health(&mut self) -> io::Result<Response> {
        self.control(Request::Health)
    }

    /// Sends a `shutdown` request (best-effort, no retry).
    pub fn shutdown(&mut self) {
        if let Ok(conn) = self.ensure_conn() {
            let _ = writeln!(conn.writer, "{}", render_request(&Request::Shutdown));
            let _ = conn.writer.flush();
        }
    }

    /// Sends one control request and waits for its (typed) response,
    /// retrying over reconnects.
    fn control(&mut self, req: Request) -> io::Result<Response> {
        let mut attempt = 1u32;
        loop {
            let outcome = self.control_once(&req);
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.conn = None;
                    self.report.reconnects += 1;
                    if !self.cfg.retry.allows_retry(attempt) {
                        return Err(e);
                    }
                    // Control ops have no cache key; back off on a fixed
                    // synthetic key so jitter stays deterministic.
                    let key = cestim_exec::CacheKey {
                        schema: 0,
                        content: 0xC0_47_01,
                    };
                    std::thread::sleep(self.cfg.retry.backoff(attempt, &key));
                    attempt += 1;
                }
            }
        }
    }

    fn control_once(&mut self, req: &Request) -> io::Result<Response> {
        let recv_timeout = self.cfg.recv_timeout;
        let mut garbage = 0u64;
        let result = (|| {
            let conn = self.ensure_conn()?;
            writeln!(conn.writer, "{}", render_request(req))?;
            conn.writer.flush()?;
            let deadline = Instant::now() + recv_timeout;
            loop {
                let Some(line) = read_line_until(conn, deadline)? else {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no control response",
                    ));
                };
                match parse_response(&line) {
                    Some(
                        resp @ (Response::Stats(_)
                        | Response::Pong
                        | Response::Health { .. }
                        | Response::Ready { .. }
                        | Response::Gc { .. }
                        | Response::ShuttingDown),
                    ) => return Ok(resp),
                    Some(_) => continue, // stale run traffic on this conn
                    None => {
                        garbage += 1;
                        continue;
                    }
                }
            }
        })();
        self.report.garbage_lines += garbage;
        result
    }

    /// One attempt: submit, optionally hedge, wait for a terminal
    /// response with our id (or the hedge id).
    fn attempt_job(&mut self, id: &str, job: &ExecJob) -> Result<Value, Failure> {
        let hedge_delay = self.hedge_delay();
        let started = Instant::now();
        let cfg_client = self.cfg.client.clone();
        let cfg_priority = self.cfg.priority;
        let cfg_deadline = self.cfg.deadline_ms;
        let recv_timeout = self.cfg.recv_timeout;
        let hedge_id = format!("{id}{HEDGE_SUFFIX}");
        let mut hedged = false;
        let mut garbage = 0u64;

        let send = |conn: &mut Conn, req_id: &str| -> io::Result<()> {
            let line = render_request(&Request::Run {
                id: req_id.to_string(),
                client: cfg_client.clone(),
                priority: cfg_priority,
                deadline_ms: cfg_deadline,
                job: job.clone(),
            });
            writeln!(conn.writer, "{line}")?;
            conn.writer.flush()
        };

        let result = (|| {
            let conn = self.ensure_conn().map_err(Failure::Io)?;
            send(conn, id).map_err(Failure::Io)?;
            // Progress-based abandon: the window restarts every time the
            // server says something about this request.
            let mut abandon_at = Instant::now() + recv_timeout;
            loop {
                if !hedged {
                    if let Some(delay) = hedge_delay {
                        if started.elapsed() >= delay {
                            hedged = true;
                            send(conn, &hedge_id).map_err(Failure::Io)?;
                        }
                    }
                }
                let now = Instant::now();
                if now >= abandon_at {
                    return Err(Failure::Timeout);
                }
                let slice_end = (now + POLL_SLICE).min(abandon_at);
                let Some(line) = read_line_until(conn, slice_end).map_err(Failure::Io)? else {
                    continue;
                };
                let Some(resp) = parse_response(&line) else {
                    garbage += 1;
                    continue;
                };
                let ours = |rid: &str| rid == id || rid == hedge_id;
                match resp {
                    Response::Accepted { id: rid, .. } | Response::Started { id: rid, .. }
                        if ours(&rid) =>
                    {
                        abandon_at = Instant::now() + recv_timeout;
                    }
                    Response::Result {
                        id: rid, payload, ..
                    } if ours(&rid) => {
                        return Ok((rid, payload));
                    }
                    // A hedge rejection/error is not fatal while the
                    // primary is still in flight, so only the primary id
                    // fails the attempt; the hedge id falls through.
                    Response::Rejected {
                        id: rid, reason, ..
                    } if rid == id => {
                        return Err(Failure::Rejected(reason));
                    }
                    Response::Error {
                        id: Some(rid),
                        code,
                        message,
                    } if rid == id => {
                        return Err(Failure::Exec(code, message));
                    }
                    // Stale ids from prior attempts, other clients'
                    // traffic, id-less errors (garbage we injected into
                    // the server): all skipped.
                    Response::Error { id: None, .. } => garbage += 1,
                    _ => {}
                }
            }
        })();

        self.report.garbage_lines += garbage;
        if hedged {
            self.report.hedges_sent += 1;
        }
        match result {
            Ok((rid, payload)) => {
                if rid == hedge_id {
                    self.report.hedge_wins += 1;
                }
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.latencies.record(nanos);
                Ok(payload)
            }
            Err(f) => {
                match &f {
                    Failure::Rejected(_) => self.report.rejected += 1,
                    Failure::Exec(..) => self.report.exec_errors += 1,
                    _ => {}
                }
                Err(f)
            }
        }
    }

    /// The hedge trigger for the next attempt: the configured floor,
    /// raised to the observed completion p99 once samples exist.
    fn hedge_delay(&self) -> Option<Duration> {
        let floor = self.cfg.hedge_after?;
        let p99 = Duration::from_nanos(self.latencies.p99());
        Some(floor.max(p99))
    }

    /// Drops the connection when the failure implies it is unusable.
    fn drop_conn_if(&mut self, failure: &Failure) {
        match failure {
            Failure::Io(_) | Failure::Timeout => {
                if self.conn.is_some() {
                    self.conn = None;
                    self.report.reconnects += 1;
                }
            }
            // Rejections and execution errors arrived on a healthy
            // connection; keep it for the retry.
            Failure::Rejected(_) | Failure::Exec(..) => {}
        }
    }

    fn ensure_conn(&mut self) -> io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.cfg.addr)?;
            stream.set_nodelay(true).ok();
            let reader = BufReader::new(stream.try_clone()?);
            let writer = BufWriter::new(stream);
            self.conn = Some(Conn {
                reader,
                writer,
                pending: Vec::new(),
            });
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }
}

/// Why one attempt failed (decides retry/connection handling).
enum Failure {
    /// Transport failure: connect, send, or receive.
    Io(io::Error),
    /// No progress within the receive window.
    Timeout,
    /// The server rejected admission (reason string).
    Rejected(String),
    /// The server reported an execution error (code, message).
    Exec(String, String),
}

impl Failure {
    fn describe(&self) -> String {
        match self {
            Failure::Io(e) => format!("io: {e}"),
            Failure::Timeout => "timed out waiting for a response".to_string(),
            Failure::Rejected(reason) => format!("rejected: {reason}"),
            Failure::Exec(code, message) => format!("{code}: {message}"),
        }
    }
}

/// Reads one line, waiting until `deadline`; `Ok(None)` on timeout
/// slices (caller re-checks its own timers), `Err` on EOF or a real
/// transport error. Bytes consumed before a timeout are kept in
/// `conn.pending` so a mid-line timeout never tears the framing.
fn read_line_until(conn: &mut Conn, deadline: Instant) -> io::Result<Option<String>> {
    loop {
        if let Some(pos) = conn.pending.iter().position(|&b| b == b'\n') {
            let rest = conn.pending.split_off(pos + 1);
            let raw = std::mem::replace(&mut conn.pending, rest);
            return Ok(Some(String::from_utf8_lossy(&raw).into_owned()));
        }
        let budget = deadline.saturating_duration_since(Instant::now());
        if budget.is_zero() {
            return Ok(None);
        }
        conn.reader
            .get_ref()
            .set_read_timeout(Some(budget.max(Duration::from_millis(1))))?;
        match conn.reader.read_until(b'\n', &mut conn.pending) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            Ok(_) => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        }
    }
}
