//! The long-lived simulation server: admission, sharded DRR scheduling,
//! warm-cache result serving, and the TCP/in-process front ends.
//!
//! One worker thread per shard pops tickets from its [`DrrQueue`] and
//! runs them: probe the shared content-addressed [`DiskCache`] first
//! (warm hit → replay the stored `JobOutput` without simulating), else
//! execute the [`ExecJob`] under `catch_unwind` isolation and store the
//! result. Every step is journaled ([`RunJournal`]), counted (`serve.*`
//! metrics), and spanned (`serve.queue_wait` / `serve.request`), so the
//! existing Prometheus/Perfetto exporters work unchanged.
//!
//! Clients stream responses in admission order per request: `accepted`
//! (or `rejected` under backpressure), `started` with the measured
//! queue wait, then a terminal `result` or `error`.

use crate::overload::{BreakerConfig, Breakers, OverloadGate, ShedConfig, WaitWindow};
use crate::protocol::{
    parse_line, render_response, ErrorCode, Request, RequestLimits, Response, MAX_LINE_BYTES,
    REASON_BREAKER_OPEN, REASON_DEADLINE, REASON_QUEUE_FULL, REASON_SHEDDING, REASON_SHUTTING_DOWN,
};
use crate::sched::{shard_of, DrrQueue, Ticket};
use cestim_exec::{DiskCache, FaultPlan, Job, RunJournal};
use cestim_obs::cancel;
use cestim_obs::span2::{SpanBuffer, SpanCollector, SpanId};
use cestim_obs::{Counter, Gauge, Histogram, Registry};
use cestim_sim::{sim_schema_salt, JobOutput};
use serde::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker groups (shards); one executor thread each.
    pub groups: usize,
    /// Ticket capacity per shard queue (admission beyond it rejects).
    pub queue_depth: usize,
    /// DRR credits granted per weight unit per rotor visit.
    pub quantum: u64,
    /// Result-cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Journal directory; `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Run a stale-cache sweep every N admissions (0 disables).
    pub gc_every: u64,
    /// Request validation bounds.
    pub limits: RequestLimits,
    /// Load-shedding watermarks (`high_pct == 0` disables shedding).
    pub shed: ShedConfig,
    /// Per-client circuit-breaker tuning (`threshold == 0` disables).
    pub breaker: BreakerConfig,
    /// Rotate the run journal once it exceeds this many bytes
    /// (0 = never rotate).
    pub journal_max_bytes: u64,
    /// Poll interval (simulator cycles) for cooperative cancellation of
    /// requests that outlive their deadline mid-execution (0 disables).
    pub cancel_check_every: u64,
    /// Chaos-injection plan applied to job execution (worker crashes /
    /// slowdowns), for resilience testing. Defaults to none.
    pub fault: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            groups: 2,
            queue_depth: 64,
            quantum: 4,
            cache_dir: None,
            journal_dir: None,
            gc_every: 0,
            limits: RequestLimits::default(),
            shed: ShedConfig::default(),
            breaker: BreakerConfig::default(),
            journal_max_bytes: 1 << 24,
            cancel_check_every: cancel::DEFAULT_CHECK_EVERY,
            fault: FaultPlan::none(),
        }
    }
}

/// `serve.*` metric handles, registered once at startup.
struct Metrics {
    requests: Counter,
    accepted: Counter,
    rejected: Counter,
    parse_errors: Counter,
    cache_hits: Counter,
    executed: Counter,
    failures: Counter,
    gc_sweeps: Counter,
    gc_removed: Counter,
    shed: Counter,
    deadline_rejected: Counter,
    deadline_cancelled: Counter,
    breaker_opened: Counter,
    breaker_rejected: Counter,
    recovered: Counter,
    journal_rotations: Counter,
    degraded: Gauge,
    queue_depth: Gauge,
    queue_wait: Histogram,
    request_nanos: Histogram,
}

impl Metrics {
    fn new(reg: &Registry) -> Metrics {
        Metrics {
            requests: reg.counter("serve.requests", &[]),
            accepted: reg.counter("serve.accepted", &[]),
            rejected: reg.counter("serve.rejected", &[]),
            parse_errors: reg.counter("serve.parse_errors", &[]),
            cache_hits: reg.counter("serve.cache_hits", &[]),
            executed: reg.counter("serve.executed", &[]),
            failures: reg.counter("serve.failures", &[]),
            gc_sweeps: reg.counter("serve.gc.sweeps", &[]),
            gc_removed: reg.counter("serve.gc.removed", &[]),
            shed: reg.counter("serve.shed", &[]),
            deadline_rejected: reg.counter("serve.deadline.rejected", &[]),
            deadline_cancelled: reg.counter("serve.deadline.cancelled", &[]),
            breaker_opened: reg.counter("serve.breaker.opened", &[]),
            breaker_rejected: reg.counter("serve.breaker.rejected", &[]),
            recovered: reg.counter("serve.recovered", &[]),
            journal_rotations: reg.counter("serve.journal.rotations", &[]),
            degraded: reg.gauge("serve.degraded", &[]),
            queue_depth: reg.gauge("serve.queue.depth", &[]),
            queue_wait: reg.histogram("serve.queue_wait.nanos", &[]),
            request_nanos: reg.histogram("serve.request.nanos", &[]),
        }
    }
}

struct Shard {
    queue: Mutex<DrrQueue>,
    ready: Condvar,
}

struct Inner {
    cfg: ServeConfig,
    cache: Option<DiskCache>,
    journal: Option<RunJournal>,
    shards: Vec<Shard>,
    registry: Registry,
    spans: SpanCollector,
    shutdown: AtomicBool,
    seq: AtomicU64,
    gc_tick: AtomicU64,
    /// Deterministic sequence for the server-side chaos fault plan,
    /// advanced once per executed (uncached) job.
    fault_seq: AtomicU64,
    gate: OverloadGate,
    breakers: Breakers,
    waits: WaitWindow,
    m: Metrics,
}

impl Inner {
    /// Parses and dispatches one raw protocol line; parse failures
    /// become `error` responses with the request id echoed when it is
    /// recoverable from the line.
    fn submit_line(&self, bytes: &[u8], reply: &Sender<Response>) {
        match parse_line(bytes, &self.cfg.limits) {
            Ok(req) => self.submit(req, reply),
            Err(e) => {
                self.m.parse_errors.add(1);
                let _ = reply.send(Response::Error {
                    id: recover_id(bytes),
                    code: e.code.as_str().to_string(),
                    message: e.message,
                });
            }
        }
    }

    /// Dispatches one parsed request.
    fn submit(&self, req: Request, reply: &Sender<Response>) {
        match req {
            Request::Ping => {
                let _ = reply.send(Response::Pong);
            }
            Request::Stats => {
                let _ = reply.send(Response::Stats(self.stats_value()));
            }
            Request::CacheGc => {
                let removed = self.run_gc();
                let _ = reply.send(Response::Gc { removed });
            }
            Request::Shutdown => {
                let _ = reply.send(Response::ShuttingDown);
                self.begin_shutdown();
            }
            Request::Health => {
                let _ = reply.send(Response::Health {
                    healthy: true,
                    draining: self.shutdown.load(Ordering::Acquire),
                    degraded: self.gate.is_degraded(),
                });
            }
            Request::Ready => {
                let draining = self.shutdown.load(Ordering::Acquire);
                let degraded = self.gate.is_degraded();
                let _ = reply.send(Response::Ready {
                    ready: !draining && !degraded,
                    queued: self.m.queue_depth.get().max(0) as u64,
                });
            }
            Request::Run {
                id,
                client,
                priority,
                deadline_ms,
                job,
            } => self.admit(id, client, priority, deadline_ms, job, reply),
        }
    }

    fn admit(
        &self,
        id: String,
        client: String,
        priority: u32,
        deadline_ms: u64,
        job: cestim_sim::ExecJob,
        reply: &Sender<Response>,
    ) {
        self.m.requests.inc();
        // Validate here (not only in the line parser) so in-process
        // submissions obey the same admission limits as TCP ones.
        if let Err(e) = crate::protocol::validate_job(&job, &self.cfg.limits) {
            self.m.parse_errors.inc();
            let _ = reply.send(Response::Error {
                id: Some(id),
                code: e.code.as_str().to_string(),
                message: e.message,
            });
            return;
        }
        let key = job.cache_key();
        let shard = shard_of(&key, self.shards.len());
        if self.shutdown.load(Ordering::Acquire) {
            self.m.rejected.inc();
            let _ = reply.send(Response::Rejected {
                id,
                shard,
                reason: REASON_SHUTTING_DOWN.to_string(),
                queue_depth: 0,
            });
            return;
        }
        // Circuit breaker: a client with repeated execution failures is
        // rejected fast instead of consuming queue slots.
        if !self.breakers.allow(&client, Instant::now()) {
            self.m.rejected.inc();
            self.m.breaker_rejected.inc();
            let _ = reply.send(Response::Rejected {
                id,
                shard,
                reason: REASON_BREAKER_OPEN.to_string(),
                queue_depth: 0,
            });
            return;
        }
        // Load shedding with hysteresis: once queued work crosses the
        // high watermark (or the queue-wait p99 the latency watermark),
        // new work is shed until depth drains to the low watermark.
        let queued = self.m.queue_depth.get().max(0) as usize;
        let capacity = self.shards.len() * self.cfg.queue_depth;
        let degraded = self.gate.observe(queued, capacity, self.waits.p99());
        self.m.degraded.set(i64::from(degraded));
        if degraded {
            self.m.rejected.inc();
            self.m.shed.inc();
            let _ = reply.send(Response::Rejected {
                id,
                shard,
                reason: REASON_SHEDDING.to_string(),
                queue_depth: queued,
            });
            return;
        }
        let ticket = Ticket {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            id: id.clone(),
            client,
            priority,
            job,
            key,
            shard,
            enqueued: Instant::now(),
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            enqueued_span_nanos: if self.spans.enabled() {
                self.spans.now_nanos()
            } else {
                0
            },
            reply: reply.clone(),
        };
        // Hold the shard lock across the accepted/rejected send so the
        // worker cannot emit `started` before the client sees `accepted`.
        let mut q = self.shards[shard].queue.lock().expect("shard lock");
        match q.push(ticket) {
            Ok(()) => {
                let queue_depth = q.len();
                self.m.accepted.inc();
                self.m.queue_depth.add(1);
                let _ = reply.send(Response::Accepted {
                    id,
                    shard,
                    queue_depth,
                });
                drop(q);
                self.shards[shard].ready.notify_one();
            }
            Err(_bounced) => {
                let queue_depth = q.len();
                drop(q);
                self.m.rejected.inc();
                let _ = reply.send(Response::Rejected {
                    id,
                    shard,
                    reason: REASON_QUEUE_FULL.to_string(),
                    queue_depth,
                });
            }
        }
        self.maybe_gc();
    }

    /// Runs the scheduled stale-cache sweep every `gc_every` admissions.
    fn maybe_gc(&self) {
        if self.cfg.gc_every == 0 {
            return;
        }
        let tick = self.gc_tick.fetch_add(1, Ordering::Relaxed) + 1;
        if tick.is_multiple_of(self.cfg.gc_every) {
            self.run_gc();
        }
    }

    /// Sweeps cache entries whose schema salt no longer matches the
    /// current simulation schema; returns how many were removed.
    fn run_gc(&self) -> u64 {
        let Some(cache) = &self.cache else { return 0 };
        let removed = cache.evict_stale(sim_schema_salt()).unwrap_or(0) as u64;
        self.m.gc_sweeps.inc();
        self.m.gc_removed.add(removed);
        removed
    }

    fn stats_value(&self) -> Value {
        serde_json::json!({
            "requests": self.m.requests.get(),
            "accepted": self.m.accepted.get(),
            "rejected": self.m.rejected.get(),
            "parse_errors": self.m.parse_errors.get(),
            "cache_hits": self.m.cache_hits.get(),
            "executed": self.m.executed.get(),
            "failures": self.m.failures.get(),
            "gc_sweeps": self.m.gc_sweeps.get(),
            "gc_removed": self.m.gc_removed.get(),
            "queue_depth": self.m.queue_depth.get(),
            "shed": self.m.shed.get(),
            "deadline_rejected": self.m.deadline_rejected.get(),
            "deadline_cancelled": self.m.deadline_cancelled.get(),
            "breaker_opened": self.m.breaker_opened.get(),
            "breaker_rejected": self.m.breaker_rejected.get(),
            "breakers_open": self.breakers.open_count() as u64,
            "recovered": self.m.recovered.get(),
            "journal_prior_jobs": self.journal.as_ref().map_or(0, |j| j.prior_job_count() as u64),
            "journal_rotations": self.m.journal_rotations.get(),
            "degraded": self.m.degraded.get(),
        })
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.ready.notify_all();
        }
    }

    /// Executes one popped ticket: queue-wait accounting, the
    /// deadline-at-dequeue check, cache probe, isolated (and
    /// cooperatively cancellable) execution, journaling, breaker
    /// bookkeeping, and the terminal response.
    fn handle(&self, ticket: Ticket, shard: usize, sbuf: &mut SpanBuffer) {
        let wait_nanos = u64::try_from(ticket.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.m.queue_wait.record(wait_nanos);
        self.waits.record(wait_nanos);
        // Deadline-aware dispatch: a ticket whose queue wait alone
        // already exceeds its budget is rejected without executing — the
        // client has given up, so running it would only burn a worker.
        if let Some(deadline) = ticket.deadline {
            if wait_nanos >= u64::try_from(deadline.as_nanos()).unwrap_or(u64::MAX) {
                self.m.rejected.inc();
                self.m.deadline_rejected.inc();
                let _ = ticket.reply.send(Response::Rejected {
                    id: ticket.id,
                    shard,
                    reason: REASON_DEADLINE.to_string(),
                    queue_depth: self.m.queue_depth.get().max(0) as usize,
                });
                return;
            }
        }
        let shard_tag = shard.to_string();
        if sbuf.enabled() {
            let now = sbuf.now_nanos();
            sbuf.record_closed(
                "serve.queue_wait",
                SpanId::NONE,
                &[("client", &ticket.client), ("shard", &shard_tag)],
                ticket.enqueued_span_nanos.min(now),
                now,
            );
        }
        let _ = ticket.reply.send(Response::Started {
            id: ticket.id.clone(),
            shard,
            queue_wait_nanos: wait_nanos,
        });

        let mut span = sbuf.open(
            "serve.request",
            SpanId::NONE,
            &[("client", &ticket.client), ("shard", &shard_tag)],
        );
        let cached_output: Option<JobOutput> = self
            .cache
            .as_ref()
            .and_then(|cache| cache.load(&ticket.key));
        let cached = cached_output.is_some();
        if cached {
            // Crash recovery: a warm hit for a key the resumed journal
            // already completed is work a previous incarnation did —
            // count it as recovered rather than merely cached.
            if self
                .journal
                .as_ref()
                .is_some_and(|j| j.was_job_completed(&ticket.key.id()))
            {
                self.m.recovered.inc();
            }
        }
        let mut cancelled = false;
        let outcome: Result<Value, String> = match cached_output {
            Some(output) => Ok(serde::to_value(&output)),
            None => {
                // Arm the cooperative deadline for the remaining budget
                // so an overdue simulation abandons itself and releases
                // this worker (see cestim_obs::cancel).
                let _guard = match (ticket.deadline, self.cfg.cancel_check_every) {
                    (Some(d), every) if every > 0 => Some(cancel::arm(ticket.enqueued + d, every)),
                    _ => None,
                };
                let fseq = self.fault_seq.fetch_add(1, Ordering::Relaxed);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Server-side chaos injection (worker crash / slow
                    // worker), deterministic in execution sequence.
                    if let Some(ms) = self.cfg.fault.slow_fires(fseq, 1) {
                        thread::sleep(Duration::from_millis(ms));
                    }
                    if self.cfg.fault.panic_fires(fseq, 1) {
                        panic!("{}", FaultPlan::panic_message(fseq));
                    }
                    ticket.job.execute()
                }));
                match run {
                    Ok(output) => {
                        if let Some(cache) = &self.cache {
                            let _ = cache.store(&ticket.key, &ticket.job.label(), &output);
                        }
                        Ok(serde::to_value(&output))
                    }
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        cancelled = cancel::is_cancel_panic(&message);
                        Err(message)
                    }
                }
            }
        };
        span.label("cached", if cached { "true" } else { "false" });
        span.label(
            "outcome",
            match (&outcome, cancelled) {
                (Ok(_), _) => "ok",
                (Err(_), true) => "cancelled",
                (Err(_), false) => "panicked",
            },
        );
        sbuf.close(span);

        if let Some(journal) = &self.journal {
            let state = match (&outcome, cached, cancelled) {
                (Ok(_), true, _) => "cached",
                (Ok(_), false, _) => "ok",
                (Err(_), _, true) => "timed-out",
                (Err(_), _, false) => "panicked",
            };
            journal.record_job(&ticket.key.id(), &ticket.job.label(), 1, state);
            // Bound journal growth under long-lived serving: rotate the
            // active file aside once it crosses the size threshold.
            if self.cfg.journal_max_bytes > 0
                && journal.size_bytes() > self.cfg.journal_max_bytes
                && journal.rotate().is_ok()
            {
                self.m.journal_rotations.inc();
            }
        }

        let elapsed_nanos = u64::try_from(ticket.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.m.request_nanos.record(elapsed_nanos);
        match outcome {
            Ok(payload) => {
                if cached {
                    self.m.cache_hits.inc();
                } else {
                    self.m.executed.inc();
                }
                self.breakers.record_success(&ticket.client);
                let _ = ticket.reply.send(Response::Result {
                    id: ticket.id,
                    cached,
                    elapsed_nanos,
                    payload,
                });
            }
            Err(message) if cancelled => {
                // A deadline overrun is the client's budget expiring,
                // not a faulty job: it does not trip the breaker.
                self.m.failures.inc();
                self.m.deadline_cancelled.inc();
                let _ = ticket.reply.send(Response::Error {
                    id: Some(ticket.id),
                    code: ErrorCode::Deadline.as_str().to_string(),
                    message,
                });
            }
            Err(message) => {
                self.m.failures.inc();
                if self.breakers.record_failure(&ticket.client, Instant::now()) {
                    self.m.breaker_opened.inc();
                }
                let _ = ticket.reply.send(Response::Error {
                    id: Some(ticket.id),
                    code: ErrorCode::Execution.as_str().to_string(),
                    message,
                });
            }
        }
    }
}

/// Best-effort request-id recovery from a line that failed to parse as
/// a request, so error responses can still be correlated.
fn recover_id(bytes: &[u8]) -> Option<String> {
    if bytes.len() > MAX_LINE_BYTES {
        return None;
    }
    let text = std::str::from_utf8(bytes).ok()?;
    let value: Value = serde_json::from_str(text.trim()).ok()?;
    Some(value.get("id")?.as_str()?.to_string())
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

fn worker_loop(inner: Arc<Inner>, shard_idx: usize) {
    let tag = format!("serve-w{shard_idx}");
    let mut sbuf = inner.spans.buffer(&tag);
    loop {
        let popped = {
            let shard = &inner.shards[shard_idx];
            let mut q = shard.queue.lock().expect("shard lock");
            loop {
                // Drain remaining work before honoring shutdown.
                if let Some(ticket) = q.pop() {
                    break Some(ticket);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = shard.ready.wait(q).expect("shard lock");
            }
        };
        let Some(ticket) = popped else {
            sbuf.flush();
            return;
        };
        inner.m.queue_depth.add(-1);
        inner.handle(ticket, shard_idx, &mut sbuf);
    }
}

/// A running server: shard workers plus the shared engine state.
///
/// Submit through [`Server::client`] (in-process) or [`Server::serve_tcp`]
/// (line-delimited JSON over TCP); stop with [`Server::shutdown`], which
/// drains all queued work first.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server with a private registry and spans disabled.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the cache or journal.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        Server::start_with(cfg, Registry::new(), SpanCollector::disabled())
    }

    /// Starts a server recording into the given registry and collector.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the cache or journal.
    pub fn start_with(
        cfg: ServeConfig,
        registry: Registry,
        spans: SpanCollector,
    ) -> io::Result<Server> {
        let cache = cfg.cache_dir.clone().map(DiskCache::open).transpose()?;
        let journal = cfg
            .journal_dir
            .clone()
            .map(RunJournal::resume)
            .transpose()?;
        let groups = cfg.groups.max(1);
        let shards = (0..groups)
            .map(|_| Shard {
                queue: Mutex::new(DrrQueue::new(cfg.queue_depth, cfg.quantum)),
                ready: Condvar::new(),
            })
            .collect();
        let m = Metrics::new(&registry);
        let gate = OverloadGate::new(cfg.shed.clone());
        let breakers = Breakers::new(cfg.breaker.clone());
        let inner = Arc::new(Inner {
            cfg,
            cache,
            journal,
            shards,
            registry,
            spans,
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            gc_tick: AtomicU64::new(0),
            fault_seq: AtomicU64::new(0),
            gate,
            breakers,
            waits: WaitWindow::new(),
            m,
        });
        let workers = (0..groups)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("serve-w{i}"))
                    .spawn(move || worker_loop(inner, i))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Server { inner, workers })
    }

    /// The metrics registry this server records into.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The span collector this server records into.
    pub fn spans(&self) -> &SpanCollector {
        &self.inner.spans
    }

    /// Opens an in-process client with its own response channel.
    pub fn client(&self) -> InProcClient {
        let (tx, rx) = mpsc::channel();
        InProcClient {
            inner: Arc::clone(&self.inner),
            tx,
            rx,
        }
    }

    /// True once a shutdown request has been observed.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown without waiting for workers to finish.
    pub fn begin_shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Drains all queued work, stops the workers, and joins them.
    pub fn shutdown(self) {
        self.inner.begin_shutdown();
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Accepts connections until shutdown, one reader thread per
    /// connection. The listener is polled so the loop notices shutdown
    /// requests arriving over any connection.
    ///
    /// # Errors
    ///
    /// Returns any non-retryable accept error.
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    let inner = Arc::clone(&self.inner);
                    thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || conn_loop(inner, stream))
                        .expect("spawn conn");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.inner.shutdown.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// One TCP connection: a reader loop feeding the scheduler and a writer
/// thread pumping queued responses back, one JSON line each.
fn conn_loop(inner: Arc<Inner>, stream: TcpStream) {
    let (tx, rx) = mpsc::channel::<Response>();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = thread::spawn(move || {
        let mut w = BufWriter::new(write_half);
        while let Ok(resp) = rx.recv() {
            if writeln!(w, "{}", render_response(&resp)).is_err() || w.flush().is_err() {
                break;
            }
        }
    });
    let mut reader = BufReader::new(stream);
    let mut line = Vec::with_capacity(1024);
    loop {
        match read_line_bounded(&mut reader, &mut line) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::Oversized) => {
                inner.m.parse_errors.add(1);
                let _ = tx.send(Response::Error {
                    id: None,
                    code: ErrorCode::Oversized.as_str().to_string(),
                    message: format!("line exceeds {MAX_LINE_BYTES} bytes"),
                });
            }
            Ok(LineRead::Line) => inner.submit_line(&line, &tx),
        }
    }
    drop(tx);
    let _ = writer.join();
}

enum LineRead {
    /// `buf` holds one complete line within bounds.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; its remainder was discarded.
    Oversized,
    /// End of stream.
    Eof,
}

/// Reads one newline-terminated line into `buf`, never buffering more
/// than `MAX_LINE_BYTES + 1` bytes; oversized lines are consumed to
/// their terminating newline and reported as [`LineRead::Oversized`].
fn read_line_bounded<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<LineRead> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.len() > MAX_LINE_BYTES {
        if buf.last() != Some(&b'\n') {
            // Discard the rest of the line in bounded chunks.
            let mut scratch = Vec::with_capacity(4096);
            loop {
                scratch.clear();
                let m = reader.by_ref().take(4096).read_until(b'\n', &mut scratch)?;
                if m == 0 || scratch.last() == Some(&b'\n') {
                    break;
                }
            }
        }
        return Ok(LineRead::Oversized);
    }
    Ok(LineRead::Line)
}

/// An in-process client: submits requests straight into the scheduler
/// and reads responses from a private channel. Used by tests and the
/// load harness's in-process mode.
pub struct InProcClient {
    inner: Arc<Inner>,
    tx: Sender<Response>,
    rx: Receiver<Response>,
}

impl InProcClient {
    /// Submits a parsed request.
    pub fn send(&self, req: Request) {
        self.inner.submit(req, &self.tx);
    }

    /// Submits one raw protocol line (exactly what a TCP client would
    /// write, without the newline).
    pub fn send_line(&self, bytes: &[u8]) {
        self.inner.submit_line(bytes, &self.tx);
    }

    /// Receives the next response, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok()
    }
}
