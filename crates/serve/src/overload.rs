//! Overload control: load-shedding hysteresis and per-client circuit
//! breakers.
//!
//! The paper's thesis — estimate confidence and throttle speculation
//! when it is low — applied to admission: the server estimates whether
//! new work will complete in budget (queue depth against capacity, the
//! recent queue-wait p99 against a watermark) and sheds load while
//! confidence is low. Both mechanisms are pure state machines over
//! injected observations, so tests drive them deterministically without
//! a live server.
//!
//! * [`OverloadGate`] — a two-watermark hysteresis: shedding engages
//!   when queued work reaches the high watermark (percent of total
//!   queue capacity) or the observed queue-wait p99 crosses a
//!   nanosecond watermark, and disengages only once depth falls to the
//!   low watermark — so the gate cannot flap at the boundary.
//! * [`Breakers`] — per-client circuit breakers: `threshold`
//!   consecutive execution failures open the circuit, converting that
//!   client's requests into fast `breaker-open` rejections for
//!   `cooldown`; the first request after cooldown probes (half-open)
//!   and a success closes the circuit again.
//! * [`WaitWindow`] — a fixed ring of recent queue-wait samples with an
//!   exact-over-the-window p99, feeding the gate's latency watermark.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-shedding watermarks. Percentages are of total queue capacity
/// (all shards); `p99_nanos == 0` disables the latency trigger and
/// `high_pct == 0` disables shedding entirely.
#[derive(Debug, Clone)]
pub struct ShedConfig {
    /// Enter shedding when queued jobs reach this percent of capacity.
    pub high_pct: u32,
    /// Exit shedding once queued jobs fall to this percent of capacity.
    pub low_pct: u32,
    /// Also enter shedding when the recent queue-wait p99 reaches this
    /// many nanoseconds (0 = depth-only shedding).
    pub p99_nanos: u64,
}

impl Default for ShedConfig {
    fn default() -> ShedConfig {
        ShedConfig {
            high_pct: 85,
            low_pct: 30,
            p99_nanos: 0,
        }
    }
}

/// Two-watermark load-shedding gate with hysteresis.
#[derive(Debug)]
pub struct OverloadGate {
    cfg: ShedConfig,
    degraded: AtomicBool,
}

impl OverloadGate {
    /// A gate with the given watermarks, starting healthy.
    pub fn new(cfg: ShedConfig) -> OverloadGate {
        OverloadGate {
            cfg,
            degraded: AtomicBool::new(false),
        }
    }

    /// Feeds one observation (current queued jobs, total queue capacity,
    /// recent queue-wait p99) and returns whether shedding is engaged
    /// after the update.
    pub fn observe(&self, queued: usize, capacity: usize, p99_nanos: u64) -> bool {
        if self.cfg.high_pct == 0 {
            return false;
        }
        let queued = queued as u64 * 100;
        let capacity = capacity as u64;
        let degraded = self.degraded.load(Ordering::Relaxed);
        let next = if degraded {
            // Exit only on the low depth watermark: latency recovers
            // lazily as the queue drains, depth is the leading signal.
            queued > u64::from(self.cfg.low_pct) * capacity
        } else {
            queued >= u64::from(self.cfg.high_pct) * capacity
                || (self.cfg.p99_nanos > 0 && p99_nanos >= self.cfg.p99_nanos)
        };
        if next != degraded {
            self.degraded.store(next, Ordering::Relaxed);
        }
        next
    }

    /// Whether shedding is currently engaged.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

/// Circuit-breaker tuning. `threshold == 0` disables breakers entirely.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive execution failures that open a client's circuit.
    pub threshold: u32,
    /// How long an open circuit rejects before probing (half-open).
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 0,
            cooldown: Duration::from_millis(500),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Rejecting fast until `since + cooldown`.
    Open { since: Instant },
    /// One probe admitted; its outcome closes or reopens the circuit.
    HalfOpen,
}

/// Per-client circuit breakers keyed by the protocol `client` field.
#[derive(Debug)]
pub struct Breakers {
    cfg: BreakerConfig,
    lanes: Mutex<HashMap<String, BreakerState>>,
}

impl Breakers {
    /// A breaker bank with the given tuning (threshold 0 = disabled).
    pub fn new(cfg: BreakerConfig) -> Breakers {
        Breakers {
            cfg,
            lanes: Mutex::new(HashMap::new()),
        }
    }

    /// Whether a request from `client` may be admitted at `now`. An open
    /// circuit whose cooldown has elapsed transitions to half-open and
    /// admits this one request as the probe.
    pub fn allow(&self, client: &str, now: Instant) -> bool {
        if self.cfg.threshold == 0 {
            return true;
        }
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(state) = lanes.get_mut(client) {
            if let BreakerState::Open { since } = *state {
                if now.duration_since(since) < self.cfg.cooldown {
                    return false;
                }
                *state = BreakerState::HalfOpen;
            }
        }
        true
    }

    /// Records a successful execution for `client`, closing its circuit.
    pub fn record_success(&self, client: &str) {
        if self.cfg.threshold == 0 {
            return;
        }
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        // Only track clients we have seen fail: a success for an unknown
        // client should not allocate a lane.
        if let Some(state) = lanes.get_mut(client) {
            *state = BreakerState::Closed { failures: 0 };
        }
    }

    /// Records an execution failure for `client` at `now`; the
    /// `threshold`-th consecutive failure (or any half-open probe
    /// failure) opens the circuit.
    pub fn record_failure(&self, client: &str, now: Instant) -> bool {
        if self.cfg.threshold == 0 {
            return false;
        }
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        let state = lanes
            .entry(client.to_string())
            .or_insert(BreakerState::Closed { failures: 0 });
        match state {
            BreakerState::Closed { failures } => {
                *failures += 1;
                if *failures >= self.cfg.threshold {
                    *state = BreakerState::Open { since: now };
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                *state = BreakerState::Open { since: now };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Number of clients whose circuit is currently open.
    pub fn open_count(&self) -> usize {
        let lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        lanes
            .values()
            .filter(|s| matches!(s, BreakerState::Open { .. }))
            .count()
    }
}

/// Capacity of the queue-wait sample ring backing the p99 estimate.
pub const WAIT_WINDOW: usize = 256;

/// Fixed-size ring of recent queue-wait samples with an exact p99 over
/// the window. Lock-guarded; both paths are short (one store, or one
/// copy-and-sort of at most [`WAIT_WINDOW`] u64s).
#[derive(Debug)]
pub struct WaitWindow {
    samples: Mutex<WaitRing>,
}

#[derive(Debug)]
struct WaitRing {
    buf: Vec<u64>,
    next: usize,
}

impl Default for WaitWindow {
    fn default() -> WaitWindow {
        WaitWindow::new()
    }
}

impl WaitWindow {
    /// An empty window.
    pub fn new() -> WaitWindow {
        WaitWindow {
            samples: Mutex::new(WaitRing {
                buf: Vec::with_capacity(WAIT_WINDOW),
                next: 0,
            }),
        }
    }

    /// Records one queue-wait sample, evicting the oldest once full.
    pub fn record(&self, nanos: u64) {
        let mut ring = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if ring.buf.len() < WAIT_WINDOW {
            ring.buf.push(nanos);
        } else {
            let at = ring.next;
            ring.buf[at] = nanos;
        }
        ring.next = (ring.next + 1) % WAIT_WINDOW;
    }

    /// The 99th-percentile sample over the window (0 when empty).
    pub fn p99(&self) -> u64 {
        let ring = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if ring.buf.is_empty() {
            return 0;
        }
        let mut sorted = ring.buf.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 99 / 100]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_engages_at_high_and_releases_at_low() {
        let gate = OverloadGate::new(ShedConfig {
            high_pct: 80,
            low_pct: 25,
            p99_nanos: 0,
        });
        assert!(!gate.observe(79, 100, 0));
        assert!(gate.observe(80, 100, 0), "high watermark engages");
        // Hysteresis: stays engaged while above the low watermark.
        assert!(gate.observe(50, 100, 0));
        assert!(gate.observe(26, 100, 0));
        assert!(!gate.observe(25, 100, 0), "low watermark releases");
        assert!(!gate.observe(79, 100, 0), "and re-arming needs high again");
    }

    #[test]
    fn gate_latency_watermark_engages_shedding() {
        let gate = OverloadGate::new(ShedConfig {
            high_pct: 90,
            low_pct: 10,
            p99_nanos: 1_000,
        });
        assert!(!gate.observe(1, 100, 999));
        assert!(gate.observe(1, 100, 1_000), "p99 watermark engages");
        // Exit is depth-driven: p99 recovering alone is not enough
        // while depth sits above low.
        assert!(gate.observe(11, 100, 0));
        assert!(!gate.observe(10, 100, 0));
    }

    #[test]
    fn zero_high_watermark_disables_shedding() {
        let gate = OverloadGate::new(ShedConfig {
            high_pct: 0,
            low_pct: 0,
            p99_nanos: 1,
        });
        assert!(!gate.observe(1_000, 10, u64::MAX));
        assert!(!gate.is_degraded());
    }

    #[test]
    fn zero_p99_watermark_disables_the_latency_trigger() {
        let gate = OverloadGate::new(ShedConfig {
            high_pct: 90,
            low_pct: 10,
            p99_nanos: 0,
        });
        assert!(!gate.observe(0, 100, u64::MAX));
    }

    #[test]
    fn breaker_cycles_closed_open_halfopen_closed() {
        let b = Breakers::new(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(50),
        });
        let t0 = Instant::now();
        assert!(b.allow("alice", t0));
        assert!(!b.record_failure("alice", t0));
        assert!(!b.record_failure("alice", t0));
        assert!(b.allow("alice", t0), "still closed below threshold");
        assert!(b.record_failure("alice", t0), "third failure opens");
        assert_eq!(b.open_count(), 1);
        assert!(!b.allow("alice", t0), "open rejects fast");
        assert!(b.allow("bob", t0), "independent per client");
        let later = t0 + Duration::from_millis(50);
        assert!(b.allow("alice", later), "cooldown elapsed: probe admitted");
        b.record_success("alice");
        assert_eq!(b.open_count(), 0);
        assert!(b.allow("alice", later), "closed again");
    }

    #[test]
    fn halfopen_probe_failure_reopens() {
        let b = Breakers::new(BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_millis(10),
        });
        let t0 = Instant::now();
        assert!(b.record_failure("c", t0), "threshold 1 opens immediately");
        let probe_at = t0 + Duration::from_millis(10);
        assert!(b.allow("c", probe_at));
        assert!(b.record_failure("c", probe_at), "probe failure reopens");
        assert!(!b.allow("c", probe_at + Duration::from_millis(5)));
    }

    #[test]
    fn zero_threshold_disables_breakers() {
        let b = Breakers::new(BreakerConfig {
            threshold: 0,
            cooldown: Duration::from_millis(1),
        });
        let t0 = Instant::now();
        for _ in 0..100 {
            assert!(!b.record_failure("c", t0));
        }
        assert!(b.allow("c", t0));
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn wait_window_p99_tracks_the_tail_and_evicts() {
        let w = WaitWindow::new();
        assert_eq!(w.p99(), 0, "empty window");
        for i in 1..=100u64 {
            w.record(i);
        }
        assert_eq!(w.p99(), 99);
        // Flood the ring with zeros: old tail samples age out.
        for _ in 0..WAIT_WINDOW {
            w.record(0);
        }
        assert_eq!(w.p99(), 0);
    }
}
