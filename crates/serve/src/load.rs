//! Deterministic synthetic load harness for the serve subsystem.
//!
//! [`build_mix`] expands a seeded [`LoadConfig`] into a fixed request
//! sequence — a mix of duplicate and unique jobs across several clients,
//! with client 0 carrying a priority skew — and [`run_pass`] replays it
//! against any [`ServeConn`] (in-process or TCP). Because the mix is a
//! pure function of the seed, replaying the same pass twice measures the
//! cold→warm cache transition exactly, and replaying it against two
//! different servers produces byte-identical payload streams.
//!
//! [`PassReport`] captures throughput, hit-rate, latency quantiles
//! (via [`cestim_obs::HistogramSnapshot::quantile`]), and per-client
//! completion statistics; [`bench_entry`] + [`append_trajectory`] write
//! the `BENCH_serve.json` trajectory consumed by docs/PERFORMANCE.md.

use crate::protocol::{
    parse_response, render_request, Request, Response, REASON_BREAKER_OPEN, REASON_DEADLINE,
    REASON_SHEDDING,
};
use cestim_exec::{canonical_string, Job};
use cestim_obs::Registry;
use cestim_qa::XorShift64Star;
use cestim_sim::{EstimatorSpec, ExecJob, PredictorKind, RunConfig};
use cestim_workloads::WorkloadKind;
use serde::Value;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Schema tag of `BENCH_serve.json` trajectory files.
pub const SERVE_BENCH_SCHEMA: &str = "cestim-serve-load/1";

/// Parameters of one synthetic load mix.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// PRNG seed; the whole mix is a pure function of it.
    pub seed: u64,
    /// Requests per pass.
    pub requests: usize,
    /// Distinct client identities (round-robin over requests).
    pub clients: usize,
    /// Percent of requests that re-issue an already-generated job.
    pub dup_percent: u32,
    /// Workload scale of generated jobs.
    pub scale: u32,
    /// Max in-flight requests (must stay at or below the server's
    /// per-shard queue depth to avoid rejects in the happy path).
    pub window: usize,
    /// Priority of client 0; all other clients run at priority 1, so
    /// the default of 10 exercises a 10:1 skew.
    pub vip_priority: u32,
    /// Per-request deadline forwarded to the server (0 = none).
    pub deadline_ms: u64,
    /// Hedge an in-flight request after this many milliseconds
    /// (0 = hedging disabled). Hedges re-send the same request id, so
    /// whichever copy finishes first wins and the loser is ignored.
    pub hedge_after_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            seed: 7,
            requests: 64,
            clients: 4,
            dup_percent: 60,
            scale: 1,
            window: 16,
            vip_priority: 10,
            deadline_ms: 0,
            hedge_after_ms: 0,
        }
    }
}

/// One pre-generated request of a load mix.
#[derive(Debug, Clone)]
pub struct MixItem {
    /// Index in the mix (the request id is derived from it per pass).
    pub index: usize,
    /// Issuing client index.
    pub client_idx: usize,
    /// Scheduling priority.
    pub priority: u32,
    /// The job to submit.
    pub job: ExecJob,
}

/// Client name for a mix client index.
pub fn client_name(idx: usize) -> String {
    format!("client{idx}")
}

fn gen_job(rng: &mut XorShift64Star, scale: u32) -> ExecJob {
    let workloads = WorkloadKind::all();
    let workload = workloads[rng.below(workloads.len() as u64) as usize];
    let predictor = match rng.below(3) {
        0 => PredictorKind::Gshare,
        1 => PredictorKind::SAg,
        _ => PredictorKind::Bimodal,
    };
    let cfg = RunConfig::paper(workload, scale, predictor);
    match rng.below(3) {
        0 => ExecJob::Run {
            cfg,
            specs: vec![EstimatorSpec::jrs_paper()],
        },
        1 => ExecJob::Distance { cfg, buckets: 64 },
        _ => ExecJob::Cluster {
            cfg,
            spec: EstimatorSpec::jrs_paper(),
            buckets: 64,
        },
    }
}

/// Expands a config into its fixed request sequence. Pure in the seed:
/// the same config always yields the same jobs in the same order.
pub fn build_mix(cfg: &LoadConfig) -> Vec<MixItem> {
    let mut rng = XorShift64Star::new(cfg.seed);
    let clients = cfg.clients.max(1);
    let mut pool: Vec<ExecJob> = Vec::new();
    let mut items = Vec::with_capacity(cfg.requests);
    for index in 0..cfg.requests {
        let client_idx = index % clients;
        let duplicate = !pool.is_empty() && rng.chance(u64::from(cfg.dup_percent.min(100)), 100);
        let job = if duplicate {
            pool[rng.below(pool.len() as u64) as usize].clone()
        } else {
            let job = gen_job(&mut rng, cfg.scale.max(1));
            pool.push(job.clone());
            job
        };
        items.push(MixItem {
            index,
            client_idx,
            priority: if client_idx == 0 { cfg.vip_priority } else { 1 },
            job,
        });
    }
    items
}

/// A client transport the load harness can drive.
pub trait ServeConn {
    /// Submits one request.
    ///
    /// # Errors
    ///
    /// Returns any transport error.
    fn send_request(&mut self, req: &Request) -> io::Result<()>;

    /// Receives the next response, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` when no response arrived in time, or any
    /// transport error.
    fn recv_response(&mut self, timeout: Duration) -> io::Result<Response>;
}

impl ServeConn for crate::server::InProcClient {
    fn send_request(&mut self, req: &Request) -> io::Result<()> {
        self.send(req.clone());
        Ok(())
    }

    fn recv_response(&mut self, timeout: Duration) -> io::Result<Response> {
        self.recv_timeout(timeout)
            .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "no response"))
    }
}

/// A blocking TCP protocol connection.
pub struct TcpConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl TcpConn {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns any connect error.
    pub fn connect(addr: &str) -> io::Result<TcpConn> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(TcpConn {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            line: String::new(),
        })
    }

    /// Sends one raw protocol line verbatim, bypassing request
    /// rendering — for exercising the server's negative paths.
    ///
    /// # Errors
    ///
    /// Returns any write error.
    pub fn send_raw_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }
}

impl ServeConn for TcpConn {
    fn send_request(&mut self, req: &Request) -> io::Result<()> {
        writeln!(self.writer, "{}", render_request(req))?;
        self.writer.flush()
    }

    fn recv_response(&mut self, timeout: Duration) -> io::Result<Response> {
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_response(&self.line)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparseable response"))
    }
}

/// Per-client slice of a [`PassReport`].
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Client name.
    pub client: String,
    /// Priority the client ran at.
    pub priority: u32,
    /// Requests sent.
    pub sent: usize,
    /// Terminal results received.
    pub completed: usize,
    /// Mean admission→result latency, nanoseconds.
    pub mean_latency_nanos: u64,
    /// Mean position of this client's results in the pass's completion
    /// order (lower = served earlier).
    pub mean_completion_index: f64,
}

/// Measured outcome of one load pass.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Pass tag ("cold", "warm", ...).
    pub pass: String,
    /// Requests in the mix.
    pub requests: usize,
    /// Terminal `result` responses received.
    pub completed: usize,
    /// Results served from the warm cache.
    pub cache_hits: usize,
    /// Backpressure rejections observed (all retried).
    pub rejected: usize,
    /// Rejections carrying the load-shedding reason (subset of
    /// `rejected`); nonzero means the server ran degraded.
    pub shed: usize,
    /// Rejections carrying the deadline reason (subset of `rejected`).
    pub deadline_rejected: usize,
    /// Rejections carrying the circuit-breaker reason (subset of
    /// `rejected`).
    pub breaker_rejected: usize,
    /// Hedge copies sent for slow in-flight requests.
    pub hedged: usize,
    /// Terminal `error` responses received.
    pub errors: usize,
    /// Wall time of the pass, nanoseconds.
    pub wall_nanos: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// `cache_hits / completed` (0 when nothing completed).
    pub hit_rate: f64,
    /// Median latency (upper-bound log2-bucket estimate), nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile latency, nanoseconds.
    pub p95_nanos: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_nanos: u64,
    /// Per-client breakdown.
    pub clients: Vec<ClientReport>,
    /// Max/min ratio of per-client mean completion index — the
    /// priority-skew fairness figure (≥ 1.0; higher means the
    /// high-priority client finished earlier relative to the rest).
    pub completion_spread: f64,
}

impl PassReport {
    /// Renders the report as a JSON object for `BENCH_serve.json`.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "pass": self.pass,
            "requests": self.requests,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "rejected": self.rejected,
            "shed": self.shed,
            "deadline_rejected": self.deadline_rejected,
            "breaker_rejected": self.breaker_rejected,
            "hedged": self.hedged,
            "errors": self.errors,
            "wall_nanos": self.wall_nanos,
            "throughput_rps": self.throughput_rps,
            "hit_rate": self.hit_rate,
            "p50_nanos": self.p50_nanos,
            "p95_nanos": self.p95_nanos,
            "p99_nanos": self.p99_nanos,
            "completion_spread": self.completion_spread,
            "clients": self.clients.iter().map(|c| serde_json::json!({
                "client": c.client,
                "priority": c.priority,
                "sent": c.sent,
                "completed": c.completed,
                "mean_latency_nanos": c.mean_latency_nanos,
                "mean_completion_index": c.mean_completion_index,
            })).collect::<Vec<Value>>(),
        })
    }
}

struct Pending {
    client_idx: usize,
    index: usize,
    started: Instant,
    hedged: bool,
}

/// Replays `mix` over `conn` as pass `pass`, collecting the first
/// payload seen per unique job into `payloads` (keyed by cache-key id)
/// for later [`verify_against_direct`].
///
/// # Errors
///
/// Returns any transport error, or `TimedOut` when the server stops
/// responding mid-pass.
pub fn run_pass(
    conn: &mut dyn ServeConn,
    mix: &[MixItem],
    cfg: &LoadConfig,
    pass: &str,
    payloads: &mut HashMap<String, (ExecJob, Value)>,
) -> io::Result<PassReport> {
    const RECV_TIMEOUT: Duration = Duration::from_secs(120);
    const MAX_RETRIES: usize = 1000;

    let registry = Registry::new();
    let latency = registry.histogram("load.latency.nanos", &[]);
    let clients = cfg.clients.max(1);
    let mut sent_per_client = vec![0usize; clients];
    let mut completed_per_client = vec![0usize; clients];
    let mut latency_sums = vec![0u128; clients];
    let mut completion_index_sums = vec![0f64; clients];
    let mut pending: HashMap<String, Pending> = HashMap::new();
    let mut send_list: Vec<usize> = (0..mix.len()).collect();
    let mut next_send = 0usize;
    let mut completed = 0usize;
    let mut cache_hits = 0usize;
    let mut rejected = 0usize;
    let mut shed = 0usize;
    let mut deadline_rejected = 0usize;
    let mut breaker_rejected = 0usize;
    let mut hedged = 0usize;
    let mut errors = 0usize;
    let mut retries = 0usize;
    let window = cfg.window.max(1);
    let t0 = Instant::now();

    while next_send < send_list.len() || !pending.is_empty() {
        // Fill the in-flight window.
        while next_send < send_list.len() && pending.len() < window {
            let item = &mix[send_list[next_send]];
            next_send += 1;
            let id = format!("{pass}-{}", item.index);
            pending.insert(
                id.clone(),
                Pending {
                    client_idx: item.client_idx,
                    index: item.index,
                    started: Instant::now(),
                    hedged: false,
                },
            );
            sent_per_client[item.client_idx] += 1;
            conn.send_request(&Request::Run {
                id,
                client: client_name(item.client_idx),
                priority: item.priority,
                deadline_ms: cfg.deadline_ms,
                job: item.job.clone(),
            })?;
        }
        if pending.is_empty() {
            break;
        }
        // Hedge stragglers: re-send the same id so whichever copy lands
        // first wins; the duplicate result is dropped by `pending.remove`.
        if cfg.hedge_after_ms > 0 {
            let cutoff = Duration::from_millis(cfg.hedge_after_ms);
            let stale: Vec<(String, usize)> = pending
                .iter()
                .filter(|(_, p)| !p.hedged && p.started.elapsed() >= cutoff)
                .map(|(id, p)| (id.clone(), p.index))
                .collect();
            for (id, index) in stale {
                let item = &mix[index];
                if let Some(p) = pending.get_mut(&id) {
                    p.hedged = true;
                }
                hedged += 1;
                conn.send_request(&Request::Run {
                    id,
                    client: client_name(item.client_idx),
                    priority: item.priority,
                    deadline_ms: cfg.deadline_ms,
                    job: item.job.clone(),
                })?;
            }
        }
        match conn.recv_response(RECV_TIMEOUT)? {
            Response::Accepted { .. } | Response::Started { .. } => {}
            Response::Result {
                id,
                cached,
                payload,
                ..
            } => {
                let Some(p) = pending.remove(&id) else {
                    continue;
                };
                let nanos = u64::try_from(p.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                latency.record(nanos);
                latency_sums[p.client_idx] += u128::from(nanos);
                completion_index_sums[p.client_idx] += completed as f64;
                completed_per_client[p.client_idx] += 1;
                completed += 1;
                if cached {
                    cache_hits += 1;
                }
                if let Some(index) = id.rsplit('-').next().and_then(|s| s.parse::<usize>().ok()) {
                    if let Some(item) = mix.get(index) {
                        payloads
                            .entry(item.job.cache_key().id())
                            .or_insert_with(|| (item.job.clone(), payload));
                    }
                }
            }
            Response::Rejected { id, reason, .. } => {
                // Backpressure: retry the item later in the pass.
                let Some(p) = pending.remove(&id) else {
                    continue;
                };
                rejected += 1;
                match reason.as_str() {
                    REASON_SHEDDING => shed += 1,
                    REASON_DEADLINE => deadline_rejected += 1,
                    REASON_BREAKER_OPEN => breaker_rejected += 1,
                    _ => {}
                }
                sent_per_client[p.client_idx] -= 1;
                if retries < MAX_RETRIES {
                    retries += 1;
                    send_list.push(p.index);
                    // Give a degraded server room to drain below its
                    // low watermark instead of hammering the gate.
                    if reason == REASON_SHEDDING || reason == REASON_BREAKER_OPEN {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                } else {
                    errors += 1;
                }
            }
            Response::Error { id, .. } => {
                errors += 1;
                if let Some(id) = id {
                    pending.remove(&id);
                }
            }
            _ => {}
        }
    }

    let wall_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let snap = latency.snapshot();
    let mut client_reports = Vec::with_capacity(clients);
    for idx in 0..clients {
        let done = completed_per_client[idx];
        client_reports.push(ClientReport {
            client: client_name(idx),
            priority: if idx == 0 { cfg.vip_priority } else { 1 },
            sent: sent_per_client[idx],
            completed: done,
            mean_latency_nanos: if done == 0 {
                0
            } else {
                (latency_sums[idx] / done as u128) as u64
            },
            mean_completion_index: if done == 0 {
                0.0
            } else {
                completion_index_sums[idx] / done as f64
            },
        });
    }
    let means: Vec<f64> = client_reports
        .iter()
        .filter(|c| c.completed > 0)
        .map(|c| c.mean_completion_index.max(0.5))
        .collect();
    let completion_spread = match (
        means.iter().cloned().fold(f64::INFINITY, f64::min),
        means.iter().cloned().fold(0.0f64, f64::max),
    ) {
        (min, max) if min.is_finite() && min > 0.0 => max / min,
        _ => 1.0,
    };
    Ok(PassReport {
        pass: pass.to_string(),
        requests: mix.len(),
        completed,
        cache_hits,
        rejected,
        shed,
        deadline_rejected,
        breaker_rejected,
        hedged,
        errors,
        wall_nanos,
        throughput_rps: if wall_nanos == 0 {
            0.0
        } else {
            completed as f64 / (wall_nanos as f64 / 1e9)
        },
        hit_rate: if completed == 0 {
            0.0
        } else {
            cache_hits as f64 / completed as f64
        },
        p50_nanos: snap.quantile(0.50),
        p95_nanos: snap.quantile(0.95),
        p99_nanos: snap.quantile(0.99),
        clients: client_reports,
        completion_spread,
    })
}

/// Outcome of [`verify_against_direct`].
#[derive(Debug, Clone, Copy)]
pub struct VerifyReport {
    /// Unique jobs re-executed directly.
    pub checked: usize,
    /// Payloads that differed from direct execution (must be 0).
    pub mismatches: usize,
}

/// Re-executes every unique job directly (the exact code path `repro`'s
/// executor runs) and compares canonical JSON bytes against the payload
/// the server returned.
pub fn verify_against_direct(payloads: &HashMap<String, (ExecJob, Value)>) -> VerifyReport {
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    for (job, served) in payloads.values() {
        checked += 1;
        let direct = serde::to_value(&job.execute());
        if canonical_string(&direct) != canonical_string(served) {
            mismatches += 1;
        }
    }
    VerifyReport {
        checked,
        mismatches,
    }
}

/// Builds one `BENCH_serve.json` trajectory entry from a run's passes.
pub fn bench_entry(
    cfg: &LoadConfig,
    passes: &[PassReport],
    verify: Option<VerifyReport>,
    note: &str,
) -> Value {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    serde_json::json!({
        "unix_secs": unix_secs,
        "note": note,
        "config": {
            "seed": cfg.seed,
            "requests": cfg.requests,
            "clients": cfg.clients,
            "dup_percent": cfg.dup_percent,
            "scale": cfg.scale,
            "window": cfg.window,
            "vip_priority": cfg.vip_priority,
            "deadline_ms": cfg.deadline_ms,
            "hedge_after_ms": cfg.hedge_after_ms,
        },
        "passes": passes.iter().map(PassReport::to_json).collect::<Vec<Value>>(),
        "verify": match verify {
            Some(v) => serde_json::json!({"checked": v.checked, "mismatches": v.mismatches}),
            None => Value::Null,
        },
    })
}

/// Appends `entry` to the `{"schema", "runs"}` trajectory at `path`,
/// creating the file on first use.
///
/// # Errors
///
/// Returns any I/O error reading or writing the file.
pub fn append_trajectory(path: &Path, entry: Value) -> io::Result<()> {
    let doc: Value = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => serde_json::json!({
            "schema": SERVE_BENCH_SCHEMA,
            "runs": Vec::<Value>::new(),
        }),
        Err(e) => return Err(e),
    };
    let Value::Object(mut obj) = doc else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trajectory root must be an object",
        ));
    };
    match obj.get_mut("runs") {
        Some(Value::Array(runs)) => runs.push(entry),
        _ => {
            obj.insert("runs".to_string(), Value::Array(vec![entry]));
        }
    }
    let doc = Value::Object(obj);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string_pretty(&doc)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_skewed() {
        let cfg = LoadConfig::default();
        let a = build_mix(&cfg);
        let b = build_mix(&cfg);
        assert_eq!(a.len(), cfg.requests);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.job, y.job);
            assert_eq!(x.client_idx, y.client_idx);
            assert_eq!(x.priority, y.priority);
        }
        assert!(a.iter().any(|i| i.priority == cfg.vip_priority));
        assert!(a.iter().any(|i| i.priority == 1));
        // The duplicate knob produces real duplicates.
        let mut seen = std::collections::HashSet::new();
        let dups = a
            .iter()
            .filter(|i| !seen.insert(i.job.cache_key().id()))
            .count();
        assert!(dups > 0, "default mix should contain duplicates");
    }

    #[test]
    fn trajectory_appends() {
        let path = std::env::temp_dir()
            .join(format!("cestim-serve-traj-{}", std::process::id()))
            .join("BENCH_serve.json");
        let _ = std::fs::remove_file(&path);
        append_trajectory(&path, serde_json::json!({"n": 1})).unwrap();
        append_trajectory(&path, serde_json::json!({"n": 2})).unwrap();
        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc["schema"].as_str().unwrap(), SERVE_BENCH_SCHEMA);
        assert_eq!(doc["runs"].as_array().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
