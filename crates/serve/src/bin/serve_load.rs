//! `serve-load` — deterministic synthetic load generator for `serve`.
//!
//! Replays a seeded mix of duplicate/unique/priority-skewed requests
//! against a server — either a running one over TCP (`--addr`) or a
//! private in-process one (`--spawn`) — and reports throughput,
//! cache hit-rate, latency quantiles, and per-client fairness. With
//! `--bench-out` the run is appended to a `BENCH_serve.json` trajectory;
//! with `--verify` every unique job is re-executed directly and its
//! payload compared byte-for-byte (canonical JSON) against the server's.
//!
//! ```text
//! serve-load [--addr HOST:PORT | --spawn] [--seed N] [--requests N]
//!            [--clients N] [--dup PCT] [--scale N] [--window N]
//!            [--vip-priority N] [--deadline-ms N] [--hedge-ms N]
//!            [--passes N] [--overload] [--verify] [--shutdown]
//!            [--bench-out FILE] [--note TEXT]
//!            [--cache-dir DIR] [--groups N] [--queue-depth N]
//!            [--gc-every N] [--prom-out FILE]
//! ```
//!
//! `--overload` appends a `degraded` pass that opens the in-flight
//! window to the full request count, deliberately flooding the queue so
//! the server's load-shedding gate engages; the pass reports how many
//! submissions were shed and the degraded-mode latency quantiles. Pair
//! it with a small `--groups`/`--queue-depth` server so the watermarks
//! are reachable.
//!
//! Exits non-zero on transport errors, execution errors, or any
//! verification mismatch.

use cestim_serve::load::{
    append_trajectory, bench_entry, build_mix, run_pass, verify_against_direct, LoadConfig,
    PassReport, ServeConn, TcpConn,
};
use cestim_serve::{Request, Response, ServeConfig, Server};
use std::collections::HashMap;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve-load [--addr HOST:PORT | --spawn] [--seed N] [--requests N]\n\
         \x20                 [--clients N] [--dup PCT] [--scale N] [--window N]\n\
         \x20                 [--vip-priority N] [--deadline-ms N] [--hedge-ms N]\n\
         \x20                 [--passes N] [--overload] [--verify] [--shutdown]\n\
         \x20                 [--bench-out FILE] [--note TEXT]\n\
         \x20                 [--cache-dir DIR] [--groups N] [--queue-depth N]\n\
         \x20                 [--gc-every N] [--prom-out FILE]\n\
         \n\
         Deterministic load harness for the serve subsystem\n\
         (see docs/SERVING.md)."
    );
    std::process::exit(2);
}

struct Args {
    addr: Option<String>,
    spawn: bool,
    load: LoadConfig,
    passes: usize,
    overload: bool,
    verify: bool,
    shutdown: bool,
    bench_out: Option<String>,
    note: String,
    serve_cfg: ServeConfig,
    prom_out: Option<String>,
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        usage();
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        spawn: false,
        load: LoadConfig::default(),
        passes: 2,
        overload: false,
        verify: false,
        shutdown: false,
        bench_out: None,
        note: String::new(),
        serve_cfg: ServeConfig::default(),
        prom_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--spawn" => args.spawn = true,
            "--seed" => args.load.seed = parse_num(&value("--seed")),
            "--requests" => args.load.requests = parse_num(&value("--requests")),
            "--clients" => args.load.clients = parse_num(&value("--clients")),
            "--dup" => args.load.dup_percent = parse_num(&value("--dup")),
            "--scale" => args.load.scale = parse_num(&value("--scale")),
            "--window" => args.load.window = parse_num(&value("--window")),
            "--vip-priority" => args.load.vip_priority = parse_num(&value("--vip-priority")),
            "--deadline-ms" => args.load.deadline_ms = parse_num(&value("--deadline-ms")),
            "--hedge-ms" => args.load.hedge_after_ms = parse_num(&value("--hedge-ms")),
            "--passes" => args.passes = parse_num(&value("--passes")),
            "--overload" => args.overload = true,
            "--verify" => args.verify = true,
            "--shutdown" => args.shutdown = true,
            "--bench-out" => args.bench_out = Some(value("--bench-out")),
            "--note" => args.note = value("--note"),
            "--cache-dir" => args.serve_cfg.cache_dir = Some(value("--cache-dir").into()),
            "--groups" => args.serve_cfg.groups = parse_num(&value("--groups")),
            "--queue-depth" => args.serve_cfg.queue_depth = parse_num(&value("--queue-depth")),
            "--gc-every" => args.serve_cfg.gc_every = parse_num(&value("--gc-every")),
            "--prom-out" => args.prom_out = Some(value("--prom-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if args.addr.is_some() == args.spawn {
        eprintln!("exactly one of --addr or --spawn is required");
        usage();
    }
    args
}

fn pass_name(index: usize) -> String {
    match index {
        0 => "cold".to_string(),
        1 => "warm".to_string(),
        n => format!("warm{n}"),
    }
}

fn print_pass(report: &PassReport) {
    println!(
        "[serve-load] pass={} completed={}/{} hit_rate={:.3} rps={:.1} \
         p50={}us p95={}us p99={}us rejected={} shed={} deadline_rej={} \
         breaker_rej={} hedged={} errors={} spread={:.2}",
        report.pass,
        report.completed,
        report.requests,
        report.hit_rate,
        report.throughput_rps,
        report.p50_nanos / 1_000,
        report.p95_nanos / 1_000,
        report.p99_nanos / 1_000,
        report.rejected,
        report.shed,
        report.deadline_rejected,
        report.breaker_rejected,
        report.hedged,
        report.errors,
        report.completion_spread,
    );
}

fn main() {
    let args = parse_args();
    let mix = build_mix(&args.load);
    let unique: std::collections::HashSet<String> = mix
        .iter()
        .map(|item| {
            use cestim_exec::Job;
            item.job.cache_key().id()
        })
        .collect();
    println!(
        "[serve-load] seed={} requests={} unique_jobs={} clients={} dup={}% passes={}",
        args.load.seed,
        mix.len(),
        unique.len(),
        args.load.clients,
        args.load.dup_percent,
        args.passes
    );

    // Spawn-mode keeps the server alive for the whole run.
    let spawned = if args.spawn {
        let registry = cestim_obs::Registry::new();
        match Server::start_with(
            args.serve_cfg.clone(),
            registry.clone(),
            cestim_obs::span2::SpanCollector::disabled(),
        ) {
            Ok(server) => Some((server, registry)),
            Err(e) => {
                eprintln!("serve-load: cannot start in-process server: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let mut conn: Box<dyn ServeConn> = match (&spawned, &args.addr) {
        (Some((server, _)), _) => Box::new(server.client()),
        (None, Some(addr)) => match TcpConn::connect(addr) {
            Ok(conn) => Box::new(conn),
            Err(e) => {
                eprintln!("serve-load: cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        (None, None) => unreachable!("parse_args enforces addr xor spawn"),
    };

    let mut payloads = HashMap::new();
    let mut passes = Vec::with_capacity(args.passes);
    let mut failed = false;
    for p in 0..args.passes.max(1) {
        match run_pass(
            conn.as_mut(),
            &mix,
            &args.load,
            &pass_name(p),
            &mut payloads,
        ) {
            Ok(report) => {
                print_pass(&report);
                if report.errors > 0 || report.completed < report.requests {
                    failed = true;
                }
                passes.push(report);
            }
            Err(e) => {
                eprintln!("serve-load: pass {} failed: {e}", pass_name(p));
                failed = true;
                break;
            }
        }
    }

    // The overload pass floods the queue on purpose: every request is
    // in flight at once, so a small server sheds until its watermarks
    // clear. Shed submissions are retried, so the pass still completes;
    // what it measures is the degraded-mode p99 and how much was shed.
    if args.overload && !failed {
        let mut degraded_cfg = args.load.clone();
        degraded_cfg.window = degraded_cfg.requests.max(1);
        match run_pass(
            conn.as_mut(),
            &mix,
            &degraded_cfg,
            "degraded",
            &mut payloads,
        ) {
            Ok(report) => {
                print_pass(&report);
                if report.shed == 0 {
                    println!(
                        "[serve-load] warning: overload pass shed nothing; \
                         lower --groups/--queue-depth to make the watermarks reachable"
                    );
                }
                if report.errors > 0 || report.completed < report.requests {
                    failed = true;
                }
                passes.push(report);
            }
            Err(e) => {
                eprintln!("serve-load: degraded pass failed: {e}");
                failed = true;
            }
        }
    }

    let verify = if args.verify {
        let report = verify_against_direct(&payloads);
        println!(
            "[serve-load] verify checked={} mismatches={}",
            report.checked, report.mismatches
        );
        if report.mismatches > 0 {
            failed = true;
        }
        Some(report)
    } else {
        None
    };

    if let Some(path) = &args.bench_out {
        let entry = bench_entry(&args.load, &passes, verify, &args.note);
        match append_trajectory(std::path::Path::new(path), entry) {
            Ok(()) => println!("[serve-load] appended run to {path}"),
            Err(e) => {
                eprintln!("serve-load: writing {path} failed: {e}");
                failed = true;
            }
        }
    }

    if args.shutdown && args.addr.is_some() && conn.send_request(&Request::Shutdown).is_ok() {
        // Wait for the acknowledgement so the server has begun
        // draining before we exit.
        while let Ok(resp) = conn.recv_response(Duration::from_secs(10)) {
            if matches!(resp, Response::ShuttingDown) {
                break;
            }
        }
    }
    if let Some((server, registry)) = spawned {
        server.shutdown();
        if let Some(path) = &args.prom_out {
            if let Err(e) = write_prom(path, &registry) {
                eprintln!("serve-load: writing {path} failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn write_prom(path: &str, registry: &cestim_obs::Registry) -> std::io::Result<()> {
    use std::io::Write;
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    cestim_obs::export::write_prometheus(&registry.snapshot(), &mut w)?;
    w.flush()
}
