//! `serve` — the long-lived simulation server binary.
//!
//! Listens for line-delimited JSON requests on a TCP address, schedules
//! them through the sharded DRR admission queue, and serves results from
//! the shared content-addressed cache. Runs until a client sends
//! `{"op":"shutdown"}`, then drains queued work, writes any requested
//! telemetry exports, and exits.
//!
//! ```text
//! serve [--addr HOST:PORT] [--groups N] [--queue-depth N] [--quantum N]
//!       [--cache-dir DIR] [--journal-dir DIR] [--gc-every N]
//!       [--max-scale N] [--prom-out FILE] [--trace-perfetto FILE]
//! ```

use cestim_obs::span2::SpanCollector;
use cestim_obs::Registry;
use cestim_serve::{ServeConfig, Server};
use std::net::TcpListener;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--groups N] [--queue-depth N] [--quantum N]\n\
         \x20            [--cache-dir DIR] [--journal-dir DIR] [--gc-every N]\n\
         \x20            [--max-scale N] [--prom-out FILE] [--trace-perfetto FILE]\n\
         \n\
         Long-lived simulation server speaking line-delimited JSON\n\
         (protocol reference: docs/SERVING.md). Send {{\"op\":\"shutdown\"}}\n\
         to drain and stop."
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    cfg: ServeConfig,
    prom_out: Option<String>,
    trace_perfetto: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7191".to_string(),
        cfg: ServeConfig::default(),
        prom_out: None,
        trace_perfetto: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_for(name));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--groups" => args.cfg.groups = parse_num(&value("--groups")),
            "--queue-depth" => args.cfg.queue_depth = parse_num(&value("--queue-depth")),
            "--quantum" => args.cfg.quantum = parse_num(&value("--quantum")),
            "--cache-dir" => args.cfg.cache_dir = Some(value("--cache-dir").into()),
            "--journal-dir" => args.cfg.journal_dir = Some(value("--journal-dir").into()),
            "--gc-every" => args.cfg.gc_every = parse_num(&value("--gc-every")),
            "--max-scale" => args.cfg.limits.max_scale = parse_num(&value("--max-scale")),
            "--prom-out" => args.prom_out = Some(value("--prom-out")),
            "--trace-perfetto" => args.trace_perfetto = Some(value("--trace-perfetto")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

fn usage_for(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage();
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        usage();
    })
}

fn main() {
    let args = parse_args();
    let registry = Registry::new();
    let spans = if args.trace_perfetto.is_some() {
        SpanCollector::new()
    } else {
        SpanCollector::disabled()
    };
    let server = match Server::start_with(args.cfg.clone(), registry.clone(), spans.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let local = listener
        .local_addr()
        .map_or(args.addr.clone(), |a| a.to_string());
    println!(
        "[serve] listening on {local} ({} groups, queue depth {}, quantum {})",
        args.cfg.groups, args.cfg.queue_depth, args.cfg.quantum
    );
    if let Err(e) = server.serve_tcp(listener) {
        eprintln!("serve: accept loop failed: {e}");
    }
    let requests = registry.counter("serve.requests", &[]).get();
    let hits = registry.counter("serve.cache_hits", &[]).get();
    let executed = registry.counter("serve.executed", &[]).get();
    server.shutdown();
    if let Some(path) = &args.prom_out {
        match write_prom(path, &registry) {
            Ok(()) => println!("[serve] wrote {path}"),
            Err(e) => eprintln!("serve: writing {path} failed: {e}"),
        }
    }
    if let Some(path) = &args.trace_perfetto {
        match write_trace(path, &spans) {
            Ok(n) => println!("[serve] wrote {path} ({n} spans)"),
            Err(e) => eprintln!("serve: writing {path} failed: {e}"),
        }
    }
    println!("[serve] done: {requests} requests ({hits} cache hits, {executed} executed)");
}

fn write_prom(path: &str, registry: &Registry) -> std::io::Result<()> {
    use std::io::Write;
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    cestim_obs::export::write_prometheus(&registry.snapshot(), &mut w)?;
    w.flush()
}

fn write_trace(path: &str, spans: &SpanCollector) -> std::io::Result<usize> {
    use std::io::Write;
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let records = spans.drain();
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    cestim_obs::export::write_perfetto(&records, &mut w)?;
    w.flush()?;
    Ok(records.len())
}
