//! `serve` — the long-lived simulation server binary.
//!
//! Listens for line-delimited JSON requests on a TCP address, schedules
//! them through the sharded DRR admission queue, and serves results from
//! the shared content-addressed cache. Runs until a client sends
//! `{"op":"shutdown"}`, then drains queued work, writes any requested
//! telemetry exports, and exits.
//!
//! ```text
//! serve [--addr HOST:PORT] [--groups N] [--queue-depth N] [--quantum N]
//!       [--cache-dir DIR] [--journal-dir DIR] [--journal-max-bytes N]
//!       [--gc-every N] [--max-scale N] [--shed-high PCT] [--shed-low PCT]
//!       [--shed-p99-ms N] [--breaker-threshold N] [--breaker-cooldown-ms N]
//!       [--fault SPEC] [--prom-out FILE] [--trace-perfetto FILE]
//! ```
//!
//! On Unix, `SIGTERM` triggers the same graceful drain as a `shutdown`
//! request: stop accepting, finish queued work, flush exports, exit.

use cestim_obs::span2::SpanCollector;
use cestim_obs::Registry;
use cestim_serve::{ServeConfig, Server};
use std::net::TcpListener;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--groups N] [--queue-depth N] [--quantum N]\n\
         \x20            [--cache-dir DIR] [--journal-dir DIR] [--journal-max-bytes N]\n\
         \x20            [--gc-every N] [--max-scale N]\n\
         \x20            [--shed-high PCT] [--shed-low PCT] [--shed-p99-ms N]\n\
         \x20            [--breaker-threshold N] [--breaker-cooldown-ms N]\n\
         \x20            [--fault panic:N|slow:N:MS|io:N]\n\
         \x20            [--prom-out FILE] [--trace-perfetto FILE]\n\
         \n\
         Long-lived simulation server speaking line-delimited JSON\n\
         (protocol reference: docs/SERVING.md). Send {{\"op\":\"shutdown\"}}\n\
         or SIGTERM to drain and stop."
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    cfg: ServeConfig,
    prom_out: Option<String>,
    trace_perfetto: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7191".to_string(),
        cfg: ServeConfig::default(),
        prom_out: None,
        trace_perfetto: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_for(name));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--groups" => args.cfg.groups = parse_num(&value("--groups")),
            "--queue-depth" => args.cfg.queue_depth = parse_num(&value("--queue-depth")),
            "--quantum" => args.cfg.quantum = parse_num(&value("--quantum")),
            "--cache-dir" => args.cfg.cache_dir = Some(value("--cache-dir").into()),
            "--journal-dir" => args.cfg.journal_dir = Some(value("--journal-dir").into()),
            "--journal-max-bytes" => {
                args.cfg.journal_max_bytes = parse_num(&value("--journal-max-bytes"));
            }
            "--gc-every" => args.cfg.gc_every = parse_num(&value("--gc-every")),
            "--max-scale" => args.cfg.limits.max_scale = parse_num(&value("--max-scale")),
            "--shed-high" => args.cfg.shed.high_pct = parse_num(&value("--shed-high")),
            "--shed-low" => args.cfg.shed.low_pct = parse_num(&value("--shed-low")),
            "--shed-p99-ms" => {
                args.cfg.shed.p99_nanos = parse_num::<u64>(&value("--shed-p99-ms")) * 1_000_000;
            }
            "--breaker-threshold" => {
                args.cfg.breaker.threshold = parse_num(&value("--breaker-threshold"));
            }
            "--breaker-cooldown-ms" => {
                args.cfg.breaker.cooldown =
                    Duration::from_millis(parse_num(&value("--breaker-cooldown-ms")));
            }
            "--fault" => {
                args.cfg.fault =
                    cestim_exec::FaultPlan::parse(&value("--fault")).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage();
                    });
            }
            "--prom-out" => args.prom_out = Some(value("--prom-out")),
            "--trace-perfetto" => args.trace_perfetto = Some(value("--trace-perfetto")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

fn usage_for(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage();
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        usage();
    })
}

/// Set by the SIGTERM handler; polled by the drain watcher thread.
#[cfg(unix)]
static SIGTERM_SEEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: i32) {
    // Only async-signal-safe work here: a single atomic store.
    SIGTERM_SEEN.store(true, std::sync::atomic::Ordering::Release);
}

/// Installs the SIGTERM handler and a watcher thread that turns the
/// signal into the same graceful drain a `shutdown` request performs.
#[cfg(unix)]
fn install_sigterm_drain(server: &std::sync::Arc<Server>) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
    let server = std::sync::Arc::clone(server);
    std::thread::spawn(move || loop {
        if SIGTERM_SEEN.load(std::sync::atomic::Ordering::Acquire) {
            eprintln!("[serve] SIGTERM: draining");
            server.begin_shutdown();
            return;
        }
        if server.is_shutting_down() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn install_sigterm_drain(_server: &std::sync::Arc<Server>) {}

fn main() {
    let args = parse_args();
    let registry = Registry::new();
    let spans = if args.trace_perfetto.is_some() {
        SpanCollector::new()
    } else {
        SpanCollector::disabled()
    };
    let server = match Server::start_with(args.cfg.clone(), registry.clone(), spans.clone()) {
        Ok(server) => std::sync::Arc::new(server),
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    install_sigterm_drain(&server);
    let listener = match TcpListener::bind(&args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let local = listener
        .local_addr()
        .map_or(args.addr.clone(), |a| a.to_string());
    println!(
        "[serve] listening on {local} ({} groups, queue depth {}, quantum {})",
        args.cfg.groups, args.cfg.queue_depth, args.cfg.quantum
    );
    if let Err(e) = server.serve_tcp(listener) {
        eprintln!("serve: accept loop failed: {e}");
    }
    let requests = registry.counter("serve.requests", &[]).get();
    let hits = registry.counter("serve.cache_hits", &[]).get();
    let executed = registry.counter("serve.executed", &[]).get();
    // The watcher thread drops its handle once it sees the shutdown
    // flag (set by whatever ended serve_tcp), so the Arc drains fast.
    let mut server = server;
    let server = loop {
        match std::sync::Arc::try_unwrap(server) {
            Ok(server) => break server,
            Err(still_shared) => {
                server = still_shared;
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    server.shutdown();
    if let Some(path) = &args.prom_out {
        match write_prom(path, &registry) {
            Ok(()) => println!("[serve] wrote {path}"),
            Err(e) => eprintln!("serve: writing {path} failed: {e}"),
        }
    }
    if let Some(path) = &args.trace_perfetto {
        match write_trace(path, &spans) {
            Ok(n) => println!("[serve] wrote {path} ({n} spans)"),
            Err(e) => eprintln!("serve: writing {path} failed: {e}"),
        }
    }
    println!("[serve] done: {requests} requests ({hits} cache hits, {executed} executed)");
}

fn write_prom(path: &str, registry: &Registry) -> std::io::Result<()> {
    use std::io::Write;
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    cestim_obs::export::write_prometheus(&registry.snapshot(), &mut w)?;
    w.flush()
}

fn write_trace(path: &str, spans: &SpanCollector) -> std::io::Result<usize> {
    use std::io::Write;
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let records = spans.drain();
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    cestim_obs::export::write_perfetto(&records, &mut w)?;
    w.flush()?;
    Ok(records.len())
}
