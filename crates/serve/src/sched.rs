//! Admission scheduler: bounded per-shard queues with per-client
//! weighted fair queuing (deficit round-robin over client ids).
//!
//! Sharding comes first: a job's content-addressed [`CacheKey`] routes
//! it to one of N worker groups via a multiply-shift range partition
//! ([`shard_of`]), so a hot key range saturates one group's queue and
//! backpressures only its own clients instead of starving cold ranges.
//!
//! Within a shard, [`DrrQueue`] holds one FIFO lane per client id and
//! serves lanes deficit-round-robin: each time the rotor reaches a lane
//! with an empty deficit, the lane is credited `quantum x weight`
//! credits, and every dequeued job spends one. A client with priority
//! 10 therefore receives ten grants per rotor visit for every one a
//! priority-1 client gets — weighted max-min fairness over clients, FIFO
//! order within a client, and O(lanes) worst-case dequeue.
//!
//! The queue is bounded: [`DrrQueue::push`] refuses tickets beyond
//! `capacity` and hands them back, which the server surfaces to the
//! client as an explicit `rejected` (backpressure) response.

use crate::protocol::Response;
use cestim_exec::CacheKey;
use cestim_sim::ExecJob;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

/// Routes a cache key to one of `groups` worker groups by partitioning
/// the 64-bit content-hash range into `groups` equal slices
/// (multiply-shift, no modulo bias).
pub fn shard_of(key: &CacheKey, groups: usize) -> usize {
    debug_assert!(groups > 0);
    ((key.content as u128 * groups as u128) >> 64) as usize
}

/// One admitted job waiting in (or popped from) a shard queue.
#[derive(Debug)]
pub struct Ticket {
    /// Monotone admission sequence number (server-wide).
    pub seq: u64,
    /// Client-chosen request id, echoed on responses.
    pub id: String,
    /// Client identity — the fair-queuing lane key.
    pub client: String,
    /// Scheduling weight (1..=100).
    pub priority: u32,
    /// The job to execute.
    pub job: ExecJob,
    /// The job's content-addressed cache key.
    pub key: CacheKey,
    /// Shard this ticket routed to.
    pub shard: usize,
    /// Admission timestamp, for queue-wait measurement.
    pub enqueued: Instant,
    /// Wall-clock budget from admission to result (`None` = unbounded).
    /// Checked at dequeue — an already-overdue ticket is rejected
    /// without executing — and enforced cooperatively during execution.
    pub deadline: Option<Duration>,
    /// Admission time on the span collector clock (0 when disabled).
    pub enqueued_span_nanos: u64,
    /// Reply channel back to the submitting connection.
    pub reply: Sender<Response>,
}

/// One client's FIFO lane inside a [`DrrQueue`].
#[derive(Debug)]
struct Lane {
    client: String,
    weight: u64,
    deficit: u64,
    fifo: VecDeque<Ticket>,
}

/// A bounded deficit-round-robin queue over per-client lanes.
#[derive(Debug)]
pub struct DrrQueue {
    lanes: Vec<Lane>,
    cursor: usize,
    len: usize,
    capacity: usize,
    quantum: u64,
}

impl DrrQueue {
    /// Creates an empty queue holding at most `capacity` tickets, with
    /// `quantum` credits granted per weight unit per rotor visit.
    pub fn new(capacity: usize, quantum: u64) -> DrrQueue {
        DrrQueue {
            lanes: Vec::new(),
            cursor: 0,
            len: 0,
            capacity: capacity.max(1),
            quantum: quantum.max(1),
        }
    }

    /// Number of queued tickets across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tickets are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total ticket capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a ticket to its client's lane.
    ///
    /// The lane's weight follows the latest ticket's priority.
    ///
    /// # Errors
    ///
    /// Returns the ticket back when the queue is at capacity
    /// (backpressure: the caller must surface an explicit reject).
    // The large Err is the point: the caller gets the whole ticket back
    // to reply on its channel instead of losing the request.
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, ticket: Ticket) -> Result<(), Ticket> {
        if self.len >= self.capacity {
            return Err(ticket);
        }
        let weight = u64::from(ticket.priority.max(1));
        match self
            .lanes
            .iter_mut()
            .find(|lane| lane.client == ticket.client)
        {
            Some(lane) => {
                lane.weight = weight;
                lane.fifo.push_back(ticket);
            }
            None => self.lanes.push(Lane {
                client: ticket.client.clone(),
                weight,
                deficit: 0,
                fifo: VecDeque::from([ticket]),
            }),
        }
        self.len += 1;
        Ok(())
    }

    /// Dequeues the next ticket under deficit round-robin, or `None`
    /// when the queue is empty. Empty lanes are dropped as the rotor
    /// passes them, so lane memory stays proportional to active clients.
    pub fn pop(&mut self) -> Option<Ticket> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.cursor >= self.lanes.len() {
                self.cursor = 0;
            }
            if self.lanes[self.cursor].fifo.is_empty() {
                self.lanes.remove(self.cursor);
                continue;
            }
            let quantum = self.quantum;
            let lane = &mut self.lanes[self.cursor];
            if lane.deficit == 0 {
                lane.deficit = quantum * lane.weight;
            }
            lane.deficit -= 1;
            let ticket = lane.fifo.pop_front().expect("non-empty lane");
            self.len -= 1;
            if lane.fifo.is_empty() {
                lane.deficit = 0;
                self.lanes.remove(self.cursor);
            } else if lane.deficit == 0 {
                self.cursor += 1;
            }
            return Some(ticket);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_sim::{ExecJob, PredictorKind, RunConfig};
    use cestim_workloads::WorkloadKind;
    use std::sync::mpsc;

    fn ticket(seq: u64, client: &str, priority: u32) -> Ticket {
        let job = ExecJob::Distance {
            cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
            buckets: 64,
        };
        let key = cestim_exec::CacheKey {
            schema: 0,
            content: seq.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        // The receiver is dropped; these tests never send on `reply`.
        let (reply, _rx) = mpsc::channel();
        Ticket {
            seq,
            id: format!("t{seq}"),
            client: client.to_string(),
            priority,
            job,
            key,
            shard: 0,
            enqueued: Instant::now(),
            deadline: None,
            enqueued_span_nanos: 0,
            reply,
        }
    }

    #[test]
    fn shard_partition_covers_range_in_order() {
        let groups = 4;
        // Key range edges land in ascending shards, never out of bounds.
        let mut last = 0usize;
        for i in 0..64 {
            let key = cestim_exec::CacheKey {
                schema: 0,
                content: (u64::MAX / 63) * i,
            };
            let s = shard_of(&key, groups);
            assert!(s < groups);
            assert!(s >= last, "partition must be monotone over the key range");
            last = s;
        }
        assert_eq!(last, groups - 1);
    }

    #[test]
    fn drr_respects_ten_to_one_weights() {
        let mut q = DrrQueue::new(256, 1);
        for i in 0..100 {
            q.push(ticket(i, "vip", 10)).unwrap();
            q.push(ticket(100 + i, "std", 1)).unwrap();
        }
        // One full rotor round serves 10 vip then 1 std.
        let first: Vec<String> = (0..22).map(|_| q.pop().unwrap().client).collect();
        let vip = first.iter().filter(|c| *c == "vip").count();
        assert_eq!(vip, 20, "10:1 weights must yield 10:1 service: {first:?}");
        // Within a lane, order stays FIFO.
        let mut q2 = DrrQueue::new(16, 1);
        for i in 0..4 {
            q2.push(ticket(i, "a", 1)).unwrap();
        }
        let seqs: Vec<u64> = (0..4).map(|_| q2.pop().unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_queue_rejects_at_capacity() {
        let mut q = DrrQueue::new(2, 1);
        q.push(ticket(0, "a", 1)).unwrap();
        q.push(ticket(1, "b", 1)).unwrap();
        let bounced = q.push(ticket(2, "c", 1)).unwrap_err();
        assert_eq!(bounced.seq, 2);
        assert_eq!(q.len(), 2);
        // Popping frees a slot again.
        q.pop().unwrap();
        q.push(ticket(3, "c", 1)).unwrap();
    }

    #[test]
    fn drr_drains_completely_and_deterministically() {
        let run = || {
            let mut q = DrrQueue::new(64, 2);
            for i in 0..10 {
                q.push(ticket(i, "a", 3)).unwrap();
                q.push(ticket(10 + i, "b", 1)).unwrap();
                q.push(ticket(20 + i, "c", 1)).unwrap();
            }
            let mut order = Vec::new();
            while let Some(t) = q.pop() {
                order.push(t.seq);
            }
            order
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 30, "every admitted ticket must drain");
        assert_eq!(a, b, "same pushes must pop in the same order");
    }
}
