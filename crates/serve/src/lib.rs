//! # cestim-serve
//!
//! A long-lived simulation service over the cestim exec engine: the
//! ROADMAP's "batch reproduction → serving system" step. The paper's
//! SENS/SPEC/PVP/PVN sweeps are overlapping, cacheable units of work;
//! this crate serves them to many concurrent clients instead of one
//! batch driver.
//!
//! Layers (see docs/SERVING.md for the full protocol and semantics):
//!
//! * [`protocol`] — line-delimited JSON requests/responses with total,
//!   panic-free parsing and structured error codes.
//! * [`sched`] — admission control: cache-key-range sharding across
//!   worker groups, and per-client weighted fair queuing (deficit
//!   round-robin) with bounded depth and explicit backpressure.
//! * [`server`] — the engine front end: shard workers, warm-result
//!   serving from the content-addressed [`cestim_exec::DiskCache`],
//!   `catch_unwind` job isolation, journaling, `serve.*` metrics and
//!   spans, scheduled stale-cache sweeps, and the TCP / in-process
//!   client surfaces.
//! * [`overload`] — overload control: load-shedding hysteresis over
//!   queue-depth/p99 watermarks and per-client circuit breakers (the
//!   failure model in docs/SERVING.md).
//! * [`client`] — [`ServeClient`]: a resilient TCP client with
//!   deterministic retry/backoff/jitter, idempotent re-submission keyed
//!   on cache keys, and optional hedged requests.
//! * [`chaos`] — a deterministic fault-injecting TCP proxy
//!   ([`ChaosProxy`]) for network-chaos testing: seeded drops,
//!   truncation, delays, garbage, and mid-stream resets.
//! * [`load`] — the deterministic seeded load harness behind the
//!   `serve-load` binary and `BENCH_serve.json`.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod load;
pub mod overload;
pub mod protocol;
pub mod sched;
pub mod server;

pub use chaos::{ChaosPlan, ChaosProxy, ChaosStats};
pub use client::{ClientConfig, ClientReport, ServeClient};
pub use overload::{BreakerConfig, Breakers, OverloadGate, ShedConfig, WaitWindow};
pub use protocol::{
    parse_line, parse_response, render_request, render_response, ErrorCode, ProtoError, Request,
    RequestLimits, Response, MAX_LINE_BYTES,
};
pub use sched::{shard_of, DrrQueue, Ticket};
pub use server::{InProcClient, ServeConfig, Server};
