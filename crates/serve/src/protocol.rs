//! The serve wire protocol: line-delimited JSON requests and responses.
//!
//! Each request is one JSON object on one line (capped at
//! [`MAX_LINE_BYTES`]); each response is likewise one JSON object per
//! line. Parsing is total: any byte sequence maps to either a valid
//! [`Request`] or a structured [`ProtoError`] — never a panic — which is
//! what the seeded protocol fuzz test in `tests/protocol_fuzz.rs` locks
//! in.
//!
//! Request shapes (the `op` field selects the operation):
//!
//! ```json
//! {"op":"run","id":"r1","client":"alice","priority":10,"deadline_ms":500,"job":{"Run":{...}}}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"health"}
//! {"op":"ready"}
//! {"op":"cache-gc"}
//! {"op":"shutdown"}
//! ```
//!
//! The `job` payload is a serialized [`ExecJob`] — exactly the value the
//! batch `repro` harness executes, so server results are byte-identical
//! to direct execution by construction.

use cestim_sim::{EstimatorSpec, ExecJob};
use serde::{Deserialize, Value};

/// Hard cap on one protocol line, in bytes. Longer lines are rejected
/// with an `oversized` error and the remainder of the line is discarded.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Machine-readable error category carried by [`ProtoError`] and the
/// `error` response's `code` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line exceeded [`MAX_LINE_BYTES`].
    Oversized,
    /// The line was not valid UTF-8 or not valid JSON.
    Malformed,
    /// Valid JSON, but not a well-formed request object.
    BadRequest,
    /// A well-formed request whose job spec failed validation.
    InvalidSpec,
    /// The job panicked while executing.
    Execution,
    /// The request's deadline expired before a result was produced.
    Deadline,
}

impl ErrorCode {
    /// The stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Oversized => "oversized",
            ErrorCode::Malformed => "malformed-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::InvalidSpec => "invalid-spec",
            ErrorCode::Execution => "execution",
            ErrorCode::Deadline => "deadline-exceeded",
        }
    }
}

/// Rejection reason: the shard queue was full (backpressure).
pub const REASON_QUEUE_FULL: &str = "queue-full";
/// Rejection reason: the server is draining for shutdown.
pub const REASON_SHUTTING_DOWN: &str = "shutting-down";
/// Rejection reason: load shedding is engaged (overload hysteresis).
pub const REASON_SHEDDING: &str = "shedding";
/// Rejection reason: this client's circuit breaker is open.
pub const REASON_BREAKER_OPEN: &str = "breaker-open";
/// Rejection reason: queue wait already exceeded the request deadline.
pub const REASON_DEADLINE: &str = "deadline-exceeded";

/// A structured parse/validation failure: an [`ErrorCode`] plus a
/// human-readable message. Rendered to clients as an `error` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    fn new(code: ErrorCode, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

/// Admission limits applied while validating a `run` request. Requests
/// outside these bounds are rejected with `invalid-spec` before they
/// reach the scheduler.
#[derive(Debug, Clone)]
pub struct RequestLimits {
    /// Largest accepted workload scale.
    pub max_scale: u32,
    /// Largest accepted estimator list.
    pub max_specs: usize,
    /// Largest accepted histogram bucket count (distance/cluster jobs).
    pub max_buckets: u64,
}

impl Default for RequestLimits {
    fn default() -> RequestLimits {
        RequestLimits {
            max_scale: 8,
            max_specs: 16,
            max_buckets: 4096,
        }
    }
}

/// One parsed client request.
// `Run` dwarfs the control ops, but a request is parsed and moved once
// per line — boxing the job would cost an allocation on the hot path to
// shrink variants that are never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a simulation job for execution.
    Run {
        /// Client-chosen request id, echoed on every response.
        id: String,
        /// Client identity used for weighted fair queuing.
        client: String,
        /// Scheduling weight, 1..=100 (higher = more service).
        priority: u32,
        /// Wall-clock budget in milliseconds from admission to result;
        /// 0 means no deadline. Requests whose queue wait alone exceeds
        /// the budget are rejected (`deadline-exceeded`) without
        /// executing, and overdue executions are cancelled
        /// cooperatively.
        deadline_ms: u64,
        /// The simulation unit to execute.
        job: ExecJob,
    },
    /// Ask for a one-line counter snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Liveness/health probe: is the process up, draining, or degraded?
    Health,
    /// Readiness probe: will a `run` submitted now be admitted?
    Ready,
    /// Run a stale-cache sweep now.
    CacheGc,
    /// Drain queued work and stop the server.
    Shutdown,
}

/// One server response, as delivered to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted to shard `shard`.
    Accepted {
        /// Echoed request id.
        id: String,
        /// Worker group the job's cache key routed to.
        shard: usize,
        /// Queue depth on that shard after admission.
        queue_depth: usize,
    },
    /// The job was not admitted; `reason` is one of the `REASON_*`
    /// constants (`queue-full`, `shutting-down`, `shedding`,
    /// `breaker-open`, `deadline-exceeded`).
    Rejected {
        /// Echoed request id.
        id: String,
        /// Worker group the job's cache key routed to.
        shard: usize,
        /// Why admission failed (a `REASON_*` constant).
        reason: String,
        /// Queue depth observed at rejection time.
        queue_depth: usize,
    },
    /// Progress event: the job was dequeued and started executing.
    Started {
        /// Echoed request id.
        id: String,
        /// Worker group executing the job.
        shard: usize,
        /// Time spent queued, in nanoseconds.
        queue_wait_nanos: u64,
    },
    /// Terminal success: the job's output payload.
    Result {
        /// Echoed request id.
        id: String,
        /// True when served from the warm result cache.
        cached: bool,
        /// Wall time from admission to completion, in nanoseconds.
        elapsed_nanos: u64,
        /// The serialized `JobOutput` — identical to what `repro` caches.
        payload: Value,
    },
    /// Terminal failure: parse, validation, or execution error.
    Error {
        /// Echoed request id, when one was recoverable from the line.
        id: Option<String>,
        /// Stable [`ErrorCode`] wire string.
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Counter snapshot (free-form object of u64 fields).
    Stats(Value),
    /// A cache sweep finished; `removed` entries were evicted.
    Gc {
        /// Number of stale entries removed.
        removed: u64,
    },
    /// Reply to `ping`.
    Pong,
    /// Reply to `health`: process liveness plus lifecycle flags.
    Health {
        /// Always true when the server answered at all.
        healthy: bool,
        /// True once shutdown has been requested (drain in progress).
        draining: bool,
        /// True while load shedding is engaged.
        degraded: bool,
    },
    /// Reply to `ready`: whether a `run` submitted now would be admitted.
    Ready {
        /// False while draining or shedding.
        ready: bool,
        /// Jobs currently queued across all shards.
        queued: u64,
    },
    /// The server acknowledged `shutdown` and is draining.
    ShuttingDown,
}

/// Parses one protocol line into a [`Request`].
///
/// Total over arbitrary bytes: returns a structured [`ProtoError`] for
/// oversized, non-UTF-8, non-JSON, ill-shaped, or out-of-bounds input.
///
/// # Errors
///
/// Returns [`ProtoError`] with the matching [`ErrorCode`] when the line
/// is not a valid request.
pub fn parse_line(bytes: &[u8], limits: &RequestLimits) -> Result<Request, ProtoError> {
    if bytes.len() > MAX_LINE_BYTES {
        return Err(ProtoError::new(
            ErrorCode::Oversized,
            format!("line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|e| ProtoError::new(ErrorCode::Malformed, format!("not UTF-8: {e}")))?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ProtoError::new(ErrorCode::BadRequest, "empty line"));
    }
    let value: Value = serde_json::from_str(trimmed)
        .map_err(|e| ProtoError::new(ErrorCode::Malformed, format!("not JSON: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, "request must be a JSON object"))?;
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, "missing string field `op`"))?;
    match op {
        "run" => {
            let id = obj
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, "missing string field `id`"))?
                .to_string();
            let client = obj
                .get("client")
                .and_then(Value::as_str)
                .unwrap_or("anon")
                .to_string();
            let priority = match obj.get("priority") {
                None => 1,
                Some(v) => v
                    .as_u64()
                    .filter(|p| (1..=100).contains(p))
                    .ok_or_else(|| {
                        ProtoError::new(
                            ErrorCode::BadRequest,
                            "`priority` must be an integer in 1..=100",
                        )
                    })? as u32,
            };
            let deadline_ms = match obj.get("deadline_ms") {
                None => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ProtoError::new(
                        ErrorCode::BadRequest,
                        "`deadline_ms` must be a non-negative integer",
                    )
                })?,
            };
            let job_value = obj
                .get("job")
                .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, "missing field `job`"))?;
            let job = ExecJob::from_value(job_value).map_err(|e| {
                // An unknown predictor or estimator family inside the job
                // is a spec problem (`invalid-spec`), not a malformed
                // request: the envelope parsed fine, the job just names a
                // family this build does not provide. Unknown job kinds
                // (enum `ExecJob` itself) stay `bad-request`.
                let msg = e.to_string();
                let spec_enums = ["PredictorKind", "EstimatorSpec", "SatVariantSpec"];
                let code = if spec_enums
                    .iter()
                    .any(|ty| msg.contains(&format!("for enum {ty}")))
                {
                    ErrorCode::InvalidSpec
                } else {
                    ErrorCode::BadRequest
                };
                ProtoError::new(code, format!("bad `job`: {msg}"))
            })?;
            validate_job(&job, limits)?;
            Ok(Request::Run {
                id,
                client,
                priority,
                deadline_ms,
                job,
            })
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "health" => Ok(Request::Health),
        "ready" => Ok(Request::Ready),
        "cache-gc" => Ok(Request::CacheGc),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError::new(
            ErrorCode::BadRequest,
            format!("unknown op `{other}`"),
        )),
    }
}

/// Validates a deserialized job against the server's admission limits.
///
/// # Errors
///
/// Returns an `invalid-spec` [`ProtoError`] naming the offending bound.
pub fn validate_job(job: &ExecJob, limits: &RequestLimits) -> Result<(), ProtoError> {
    let invalid = |msg: String| ProtoError::new(ErrorCode::InvalidSpec, msg);
    let check_scale = |scale: u32| {
        if scale == 0 || scale > limits.max_scale {
            Err(invalid(format!(
                "scale {scale} outside 1..={}",
                limits.max_scale
            )))
        } else {
            Ok(())
        }
    };
    let check_specs = |specs: &[EstimatorSpec]| {
        if specs.len() > limits.max_specs {
            return Err(invalid(format!(
                "{} estimators exceeds limit {}",
                specs.len(),
                limits.max_specs
            )));
        }
        for s in specs {
            s.validate().map_err(|e| invalid(e.to_string()))?;
        }
        Ok(())
    };
    let check_buckets = |b: u64| {
        if b == 0 || b > limits.max_buckets {
            Err(invalid(format!(
                "buckets {b} outside 1..={}",
                limits.max_buckets
            )))
        } else {
            Ok(())
        }
    };
    match job {
        ExecJob::Run { cfg, specs } => {
            check_scale(cfg.scale)?;
            check_specs(specs)
        }
        ExecJob::CrossProfileRun { cfg, specs, .. } => {
            check_scale(cfg.scale)?;
            check_specs(specs)
        }
        ExecJob::Distance { cfg, buckets } => {
            check_scale(cfg.scale)?;
            check_buckets(*buckets)
        }
        ExecJob::Cluster { cfg, spec, buckets } => {
            check_scale(cfg.scale)?;
            spec.validate().map_err(|e| invalid(e.to_string()))?;
            check_buckets(*buckets)
        }
        ExecJob::Boost { cfg, specs, max_k } => {
            check_scale(cfg.scale)?;
            check_specs(specs)?;
            if specs.is_empty() {
                return Err(invalid(
                    "boost jobs need at least one estimator".to_string(),
                ));
            }
            if *max_k == 0 || *max_k > 64 {
                return Err(invalid(format!("max_k {max_k} outside 1..=64")));
            }
            Ok(())
        }
        ExecJob::Replay { records, specs, .. } => {
            check_specs(specs)?;
            // Inline traces are bounded by the protocol's line cap anyway;
            // this bound produces a structured rejection before a huge
            // record array ties up a worker.
            if records.len() > MAX_REPLAY_RECORDS {
                return Err(invalid(format!(
                    "{} trace records exceeds limit {MAX_REPLAY_RECORDS}",
                    records.len()
                )));
            }
            Ok(())
        }
        ExecJob::Smt { scale, .. } => check_scale(*scale),
    }
}

/// Largest inline trace a `Replay` job may carry over the wire.
pub const MAX_REPLAY_RECORDS: usize = 1 << 20;

/// Renders a request as one protocol line (no trailing newline).
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Run {
            id,
            client,
            priority,
            deadline_ms,
            job,
        } => serde_json::json!({
            "op": "run",
            "id": id,
            "client": client,
            "priority": priority,
            "deadline_ms": deadline_ms,
            "job": serde::to_value(job),
        })
        .to_string(),
        Request::Stats => r#"{"op":"stats"}"#.to_string(),
        Request::Ping => r#"{"op":"ping"}"#.to_string(),
        Request::Health => r#"{"op":"health"}"#.to_string(),
        Request::Ready => r#"{"op":"ready"}"#.to_string(),
        Request::CacheGc => r#"{"op":"cache-gc"}"#.to_string(),
        Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
    }
}

/// Renders a response as one protocol line (no trailing newline).
pub fn render_response(resp: &Response) -> String {
    match resp {
        Response::Accepted {
            id,
            shard,
            queue_depth,
        } => serde_json::json!({
            "type": "accepted", "id": id, "shard": shard, "queue_depth": queue_depth,
        })
        .to_string(),
        Response::Rejected {
            id,
            shard,
            reason,
            queue_depth,
        } => serde_json::json!({
            "type": "rejected", "id": id, "shard": shard,
            "reason": reason, "queue_depth": queue_depth,
        })
        .to_string(),
        Response::Started {
            id,
            shard,
            queue_wait_nanos,
        } => serde_json::json!({
            "type": "started", "id": id, "shard": shard,
            "queue_wait_nanos": queue_wait_nanos,
        })
        .to_string(),
        Response::Result {
            id,
            cached,
            elapsed_nanos,
            payload,
        } => serde_json::json!({
            "type": "result", "id": id, "cached": cached,
            "elapsed_nanos": elapsed_nanos, "payload": payload.clone(),
        })
        .to_string(),
        Response::Error { id, code, message } => {
            let idv = match id {
                Some(s) => Value::String(s.clone()),
                None => Value::Null,
            };
            serde_json::json!({
                "type": "error", "id": idv, "code": code, "message": message,
            })
            .to_string()
        }
        Response::Stats(fields) => serde_json::json!({
            "type": "stats", "fields": fields.clone(),
        })
        .to_string(),
        Response::Gc { removed } => serde_json::json!({
            "type": "gc", "removed": removed,
        })
        .to_string(),
        Response::Pong => r#"{"type":"pong"}"#.to_string(),
        Response::Health {
            healthy,
            draining,
            degraded,
        } => serde_json::json!({
            "type": "health", "healthy": healthy,
            "draining": draining, "degraded": degraded,
        })
        .to_string(),
        Response::Ready { ready, queued } => serde_json::json!({
            "type": "ready", "ready": ready, "queued": queued,
        })
        .to_string(),
        Response::ShuttingDown => r#"{"type":"shutting-down"}"#.to_string(),
    }
}

/// Parses one response line back into a [`Response`] (the client half).
///
/// Returns `None` for lines that are not a recognizable response.
pub fn parse_response(line: &str) -> Option<Response> {
    let value: Value = serde_json::from_str(line.trim()).ok()?;
    let obj = value.as_object()?;
    let kind = obj.get("type").and_then(Value::as_str)?;
    let id = || obj.get("id").and_then(Value::as_str).map(str::to_string);
    match kind {
        "accepted" => Some(Response::Accepted {
            id: id()?,
            shard: obj.get("shard")?.as_u64()? as usize,
            queue_depth: obj.get("queue_depth")?.as_u64()? as usize,
        }),
        "rejected" => Some(Response::Rejected {
            id: id()?,
            shard: obj.get("shard")?.as_u64()? as usize,
            reason: obj.get("reason")?.as_str()?.to_string(),
            queue_depth: obj.get("queue_depth")?.as_u64()? as usize,
        }),
        "started" => Some(Response::Started {
            id: id()?,
            shard: obj.get("shard")?.as_u64()? as usize,
            queue_wait_nanos: obj.get("queue_wait_nanos")?.as_u64()?,
        }),
        "result" => Some(Response::Result {
            id: id()?,
            cached: obj.get("cached")?.as_bool()?,
            elapsed_nanos: obj.get("elapsed_nanos")?.as_u64()?,
            payload: obj.get("payload")?.clone(),
        }),
        "error" => Some(Response::Error {
            id: id(),
            code: obj.get("code")?.as_str()?.to_string(),
            message: obj.get("message")?.as_str()?.to_string(),
        }),
        "stats" => Some(Response::Stats(obj.get("fields")?.clone())),
        "gc" => Some(Response::Gc {
            removed: obj.get("removed")?.as_u64()?,
        }),
        "pong" => Some(Response::Pong),
        "health" => Some(Response::Health {
            healthy: obj.get("healthy")?.as_bool()?,
            draining: obj.get("draining")?.as_bool()?,
            degraded: obj.get("degraded")?.as_bool()?,
        }),
        "ready" => Some(Response::Ready {
            ready: obj.get("ready")?.as_bool()?,
            queued: obj.get("queued")?.as_u64()?,
        }),
        "shutting-down" => Some(Response::ShuttingDown),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_sim::{PredictorKind, RunConfig};
    use cestim_workloads::WorkloadKind;

    fn sample_job() -> ExecJob {
        ExecJob::Distance {
            cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
            buckets: 64,
        }
    }

    #[test]
    fn run_request_round_trips() {
        let req = Request::Run {
            id: "r1".to_string(),
            client: "alice".to_string(),
            priority: 10,
            deadline_ms: 500,
            job: sample_job(),
        };
        let line = render_request(&req);
        let parsed = parse_line(line.as_bytes(), &RequestLimits::default()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn deadline_defaults_to_zero_and_rejects_non_integers() {
        let limits = RequestLimits::default();
        let job = serde::to_value(&sample_job());
        let line = serde_json::json!({"op":"run","id":"r1","job":job.clone()}).to_string();
        match parse_line(line.as_bytes(), &limits).unwrap() {
            Request::Run { deadline_ms, .. } => assert_eq!(deadline_ms, 0),
            other => panic!("unexpected parse: {other:?}"),
        }
        let bad = serde_json::json!({"op":"run","id":"r1","deadline_ms":-5,"job":job}).to_string();
        assert_eq!(
            parse_line(bad.as_bytes(), &limits).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn replay_requests_round_trip_with_inline_records() {
        use cestim_pipeline::PipelineConfig;
        use cestim_sim::{EstimatorSpec, TraceRecord};
        let records: Vec<TraceRecord> = cestim_trace_io::from_jsonl(concat!(
            "{\"format\":\"cestim-trace\",\"version\":1}\n",
            "{\"pc\":4,\"target\":0,\"taken\":false,\"class\":\"alu\",\"dst\":5,\"s1\":5,\"s2\":255}\n",
            "{\"pc\":8,\"target\":4,\"taken\":true,\"class\":\"branch\",\"dst\":255,\"s1\":5,\"s2\":255}\n",
            "{\"pc\":12,\"target\":0,\"taken\":false,\"class\":\"halt\",\"dst\":255,\"s1\":255,\"s2\":255}\n",
        ))
        .unwrap();
        let req = Request::Run {
            id: "t1".to_string(),
            client: "alice".to_string(),
            priority: 5,
            deadline_ms: 0,
            job: ExecJob::Replay {
                records,
                predictor: PredictorKind::Gshare,
                pipeline: PipelineConfig::paper(),
                specs: vec![EstimatorSpec::jrs_paper()],
            },
        };
        let line = render_request(&req);
        let parsed = parse_line(line.as_bytes(), &RequestLimits::default()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn replay_validation_bounds_records_and_specs() {
        use cestim_pipeline::PipelineConfig;
        use cestim_sim::{EstimatorSpec, TraceRecord};
        let limits = RequestLimits::default();
        let job = |n_specs: usize| ExecJob::Replay {
            records: Vec::<TraceRecord>::new(),
            predictor: PredictorKind::Gshare,
            pipeline: PipelineConfig::paper(),
            specs: vec![EstimatorSpec::jrs_paper(); n_specs],
        };
        assert!(validate_job(&job(1), &limits).is_ok());
        assert_eq!(
            validate_job(&job(limits.max_specs + 1), &limits)
                .unwrap_err()
                .code,
            ErrorCode::InvalidSpec
        );
    }

    #[test]
    fn control_ops_parse() {
        let limits = RequestLimits::default();
        assert_eq!(
            parse_line(br#"{"op":"ping"}"#, &limits).unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_line(br#"{"op":"stats"}"#, &limits).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_line(br#"{"op":"cache-gc"}"#, &limits).unwrap(),
            Request::CacheGc
        );
        assert_eq!(
            parse_line(br#"{"op":"shutdown"}"#, &limits).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_line(br#"{"op":"health"}"#, &limits).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_line(br#"{"op":"ready"}"#, &limits).unwrap(),
            Request::Ready
        );
    }

    #[test]
    fn structured_errors_for_bad_input() {
        let limits = RequestLimits::default();
        let code = |bytes: &[u8]| parse_line(bytes, &limits).unwrap_err().code;
        assert_eq!(code(&vec![b'x'; MAX_LINE_BYTES + 1]), ErrorCode::Oversized);
        assert_eq!(code(&[0xff, 0xfe, b'{']), ErrorCode::Malformed);
        assert_eq!(code(b"{not json"), ErrorCode::Malformed);
        assert_eq!(code(b"42"), ErrorCode::BadRequest);
        assert_eq!(code(b"{}"), ErrorCode::BadRequest);
        assert_eq!(code(br#"{"op":"warp"}"#), ErrorCode::BadRequest);
        assert_eq!(code(br#"{"op":"run","id":"x"}"#), ErrorCode::BadRequest);
        assert_eq!(
            code(br#"{"op":"run","id":"x","priority":0,"job":{}}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(code(b"   "), ErrorCode::BadRequest);
    }

    #[test]
    fn validation_enforces_limits() {
        let limits = RequestLimits::default();
        let mut cfg = RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare);
        cfg.scale = limits.max_scale + 1;
        let job = ExecJob::Distance { cfg, buckets: 64 };
        let err = validate_job(&job, &limits).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidSpec);

        let ok = sample_job();
        assert!(validate_job(&ok, &limits).is_ok());

        let bad_buckets = ExecJob::Distance {
            cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
            buckets: limits.max_buckets + 1,
        };
        assert_eq!(
            validate_job(&bad_buckets, &limits).unwrap_err().code,
            ErrorCode::InvalidSpec
        );
    }

    #[test]
    fn unknown_predictor_or_estimator_name_is_invalid_spec() {
        let limits = RequestLimits::default();
        let err = |line: String| parse_line(line.as_bytes(), &limits).unwrap_err();
        // Corrupt the predictor name inside an otherwise valid job.
        let job = serde::to_value(&sample_job())
            .to_string()
            .replace("\"Gshare\"", "\"Hexapod\"");
        let e = err(format!(r#"{{"op":"run","id":"x","job":{job}}}"#));
        assert_eq!(e.code, ErrorCode::InvalidSpec);
        assert!(e.message.contains("Hexapod"), "{}", e.message);

        // Same for an unknown estimator family.
        let bad_spec = serde_json::json!({"op":"run","id":"x","job":{"Run":{
            "cfg": serde::to_value(&RunConfig::paper(
                WorkloadKind::Compress, 1, PredictorKind::Gshare)),
            "specs": [{"Quantum":{"qubits":3}}],
        }}});
        assert_eq!(err(bad_spec.to_string()).code, ErrorCode::InvalidSpec);

        // Unknown job *kind* stays bad-request: the spec enums are fine,
        // the envelope's job payload is not a known operation.
        let e = err(r#"{"op":"run","id":"x","job":{"What":{}}}"#.to_string());
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn structurally_invalid_specs_are_rejected() {
        use cestim_sim::EstimatorSpec;
        let limits = RequestLimits::default();
        let cfg = RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare);
        let bad_vote = ExecJob::Run {
            cfg: cfg.clone(),
            specs: vec![EstimatorSpec::Voting {
                components: vec![],
                quorum: 1,
            }],
        };
        let err = validate_job(&bad_vote, &limits).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidSpec);

        let bad_cluster = ExecJob::Cluster {
            cfg: cfg.clone(),
            spec: EstimatorSpec::Voting {
                components: vec![EstimatorSpec::AlwaysHigh],
                quorum: 9,
            },
            buckets: 64,
        };
        assert_eq!(
            validate_job(&bad_cluster, &limits).unwrap_err().code,
            ErrorCode::InvalidSpec
        );

        let good = ExecJob::Run {
            cfg,
            specs: vec![EstimatorSpec::Voting {
                components: vec![
                    EstimatorSpec::Timing { threshold: 4 },
                    EstimatorSpec::Distance { threshold: 3 },
                ],
                quorum: 1,
            }],
        };
        assert!(validate_job(&good, &limits).is_ok());
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Accepted {
                id: "a".to_string(),
                shard: 1,
                queue_depth: 3,
            },
            Response::Rejected {
                id: "b".to_string(),
                shard: 0,
                reason: "queue-full".to_string(),
                queue_depth: 64,
            },
            Response::Started {
                id: "c".to_string(),
                shard: 2,
                queue_wait_nanos: 12345,
            },
            Response::Result {
                id: "d".to_string(),
                cached: true,
                elapsed_nanos: 99,
                payload: serde_json::json!({"k": 1}),
            },
            Response::Error {
                id: None,
                code: "malformed-json".to_string(),
                message: "not JSON".to_string(),
            },
            Response::Gc { removed: 4 },
            Response::Pong,
            Response::Health {
                healthy: true,
                draining: false,
                degraded: true,
            },
            Response::Ready {
                ready: false,
                queued: 17,
            },
            Response::ShuttingDown,
        ];
        for resp in cases {
            let line = render_response(&resp);
            assert_eq!(parse_response(&line).unwrap(), resp, "{line}");
        }
    }
}
