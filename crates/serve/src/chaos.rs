//! A deterministic fault-injecting TCP proxy for network-chaos testing.
//!
//! [`ChaosProxy`] sits between a client and a `cestim-serve` listener
//! and corrupts traffic according to a seeded [`ChaosPlan`]: lines are
//! dropped, truncated (then the connection torn down, so framing stays
//! honest), delayed, prefixed with garbage, or the whole stream is
//! reset mid-flight. All randomness comes from the cestim-qa
//! xorshift64* PRNG — each proxied connection derives independent child
//! streams per direction from the plan seed and a monotone connection
//! index, so a given (seed, connection order) replays the exact same
//! fault sequence every run.
//!
//! The proxy is line-oriented on purpose: the serve protocol is one
//! JSON object per line, so "per line" is the natural unit at which a
//! real network would hand the application a torn read, and it lets the
//! chaos e2e suite assert byte-identical payloads after the resilient
//! client heals every injected fault.

use cestim_qa::XorShift64Star;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Per-line fault probabilities, in parts per thousand, plus the plan
/// seed. A zeroed plan forwards everything untouched.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// PRNG seed; connection `n` direction `d` uses child `2n + d`.
    pub seed: u64,
    /// ‰ chance a line is silently dropped (the peer sees nothing).
    pub drop_per_mille: u64,
    /// ‰ chance a line is cut in half and the connection torn down.
    pub truncate_per_mille: u64,
    /// ‰ chance a line is delayed by up to `delay_ms_max` milliseconds.
    pub delay_per_mille: u64,
    /// Upper bound on an injected delay, in milliseconds.
    pub delay_ms_max: u64,
    /// ‰ chance a garbage line is injected ahead of the real one.
    pub garbage_per_mille: u64,
    /// ‰ chance the connection is reset before the line is forwarded.
    pub reset_per_mille: u64,
}

impl ChaosPlan {
    /// A plan that forwards all traffic untouched (still counts lines).
    pub fn none(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            drop_per_mille: 0,
            truncate_per_mille: 0,
            delay_per_mille: 0,
            delay_ms_max: 0,
            garbage_per_mille: 0,
            reset_per_mille: 0,
        }
    }

    /// The seeded default fault mix used by the chaos e2e suite and the
    /// CI smoke job: every fault class enabled, rates low enough that a
    /// retrying client converges quickly.
    pub fn standard(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            drop_per_mille: 30,
            truncate_per_mille: 20,
            delay_per_mille: 60,
            delay_ms_max: 20,
            garbage_per_mille: 40,
            reset_per_mille: 20,
        }
    }
}

/// Counters for injected faults, shared across all proxied connections.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Lines that reached the proxy (both directions).
    pub lines: AtomicU64,
    /// Lines silently dropped.
    pub dropped: AtomicU64,
    /// Lines truncated (connection then torn down).
    pub truncated: AtomicU64,
    /// Lines delayed.
    pub delayed: AtomicU64,
    /// Garbage lines injected.
    pub garbage: AtomicU64,
    /// Connections reset mid-stream.
    pub resets: AtomicU64,
}

impl ChaosStats {
    /// Total faults injected across all classes.
    pub fn total_faults(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
            + self.garbage.load(Ordering::Relaxed)
            + self.resets.load(Ordering::Relaxed)
    }
}

/// A running chaos proxy: accepts on its own port and pipes each
/// connection to the upstream address through the fault plan.
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral local port forwarding to
    /// `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn start(upstream: std::net::SocketAddr, plan: ChaosPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let root = XorShift64Star::new(plan.seed);
        let accept_thread = thread::Builder::new()
            .name("chaos-accept".to_string())
            .spawn(move || {
                let mut conn_index = 0u64;
                loop {
                    match listener.accept() {
                        Ok((client, _peer)) => {
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            let Ok(server) = TcpStream::connect(upstream) else {
                                let _ = client.shutdown(Shutdown::Both);
                                continue;
                            };
                            spawn_pumps(client, server, &plan, &root, conn_index, &accept_stats);
                            conn_index += 1;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            if accept_stop.load(Ordering::Acquire) {
                                return;
                            }
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn chaos accept");
        Ok(ChaosProxy {
            addr,
            stop,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address (connect clients here).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Fault counters, live.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting new connections and joins the accept thread.
    /// In-flight pump threads die with their connections.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns the two direction pumps for one proxied connection. Each
/// direction gets its own deterministic child PRNG stream; tearing down
/// either side shuts both streams so the peer observes EOF promptly.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: &ChaosPlan,
    root: &XorShift64Star,
    conn_index: u64,
    stats: &Arc<ChaosStats>,
) {
    let pairs = [
        // client → server carries requests; server → client responses.
        (client.try_clone(), server.try_clone(), 2 * conn_index),
        (server.try_clone(), client.try_clone(), 2 * conn_index + 1),
    ];
    for (src, dst, child) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let rng = root.child(child);
        let plan = plan.clone();
        let stats = Arc::clone(stats);
        thread::Builder::new()
            .name(format!("chaos-pump-{conn_index}"))
            .spawn(move || pump(src, dst, plan, rng, stats))
            .expect("spawn chaos pump");
    }
}

/// Hard cap on one proxied line; longer lines are forwarded in chunks
/// without fault injection (the serve protocol rejects them anyway).
const MAX_PROXY_LINE: u64 = 256 * 1024;

fn pump(
    src: TcpStream,
    dst: TcpStream,
    plan: ChaosPlan,
    mut rng: XorShift64Star,
    stats: Arc<ChaosStats>,
) {
    let mut reader = BufReader::new(src.try_clone().expect("clone src"));
    let mut dst_w = dst.try_clone().expect("clone dst");
    let teardown = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    let mut line = Vec::with_capacity(1024);
    loop {
        line.clear();
        let n = match reader
            .by_ref()
            .take(MAX_PROXY_LINE)
            .read_until(b'\n', &mut line)
        {
            Ok(0) | Err(_) => {
                teardown(&src, &dst);
                return;
            }
            Ok(n) => n,
        };
        stats.lines.fetch_add(1, Ordering::Relaxed);
        let complete = line.last() == Some(&b'\n') && n < MAX_PROXY_LINE as usize;
        if complete {
            if plan.reset_per_mille > 0 && rng.chance(plan.reset_per_mille, 1000) {
                stats.resets.fetch_add(1, Ordering::Relaxed);
                teardown(&src, &dst);
                return;
            }
            if plan.drop_per_mille > 0 && rng.chance(plan.drop_per_mille, 1000) {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if plan.truncate_per_mille > 0 && rng.chance(plan.truncate_per_mille, 1000) {
                stats.truncated.fetch_add(1, Ordering::Relaxed);
                let half = &line[..line.len() / 2];
                let _ = dst_w.write_all(half);
                let _ = dst_w.flush();
                teardown(&src, &dst);
                return;
            }
            if plan.delay_per_mille > 0
                && plan.delay_ms_max > 0
                && rng.chance(plan.delay_per_mille, 1000)
            {
                stats.delayed.fetch_add(1, Ordering::Relaxed);
                thread::sleep(Duration::from_millis(1 + rng.below(plan.delay_ms_max)));
            }
            if plan.garbage_per_mille > 0 && rng.chance(plan.garbage_per_mille, 1000) {
                stats.garbage.fetch_add(1, Ordering::Relaxed);
                let junk = format!("!!chaos-garbage-{}\n", rng.below(1 << 32));
                if dst_w.write_all(junk.as_bytes()).is_err() {
                    teardown(&src, &dst);
                    return;
                }
            }
        }
        if dst_w.write_all(&line).is_err() || dst_w.flush().is_err() {
            teardown(&src, &dst);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A line-echo upstream for proxy tests.
    fn echo_upstream() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut w = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 || w.write_all(line.as_bytes()).is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn faultless_plan_is_a_transparent_pipe() {
        let upstream = echo_upstream();
        let mut proxy = ChaosProxy::start(upstream, ChaosPlan::none(1)).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        for i in 0..20 {
            writeln!(w, "hello-{i}").unwrap();
            let mut back = String::new();
            reader.read_line(&mut back).unwrap();
            assert_eq!(back, format!("hello-{i}\n"));
        }
        assert_eq!(proxy.stats().total_faults(), 0);
        assert!(proxy.stats().lines.load(Ordering::Relaxed) >= 40);
        proxy.stop();
    }

    #[test]
    fn seeded_plans_inject_faults_deterministically() {
        // Drive two identical runs; fault counts must match exactly.
        let counts = |seed: u64| {
            let upstream = echo_upstream();
            let plan = ChaosPlan {
                seed,
                drop_per_mille: 150,
                truncate_per_mille: 0,
                delay_per_mille: 0,
                delay_ms_max: 0,
                garbage_per_mille: 100,
                reset_per_mille: 0,
            };
            let mut proxy = ChaosProxy::start(upstream, plan).unwrap();
            let stream = TcpStream::connect(proxy.addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            for i in 0..200 {
                writeln!(w, "ping-{i}").unwrap();
            }
            w.flush().unwrap();
            // Read whatever made it through until a short timeout.
            reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            let mut line = String::new();
            let mut echoed = 0u64;
            while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                echoed += 1;
                line.clear();
            }
            let s = proxy.stats();
            let out = (
                s.dropped.load(Ordering::Relaxed),
                s.garbage.load(Ordering::Relaxed),
                echoed,
            );
            proxy.stop();
            out
        };
        let a = counts(42);
        let b = counts(42);
        assert_eq!(a, b, "same seed, same faults");
        assert!(a.0 > 0, "drops fired");
        assert!(a.1 > 0, "garbage fired");
    }

    #[test]
    fn resets_tear_the_connection_down() {
        let upstream = echo_upstream();
        let plan = ChaosPlan {
            seed: 7,
            drop_per_mille: 0,
            truncate_per_mille: 0,
            delay_per_mille: 0,
            delay_ms_max: 0,
            garbage_per_mille: 0,
            reset_per_mille: 1000,
        };
        let mut proxy = ChaosProxy::start(upstream, plan).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let _ = writeln!(w, "doomed");
        let mut back = String::new();
        // Certain reset: the read must observe EOF/error, never data.
        reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let got = reader.read_line(&mut back).unwrap_or(0);
        assert_eq!(got, 0, "reset connection yields EOF, got {back:?}");
        assert_eq!(proxy.stats().resets.load(Ordering::Relaxed), 1);
        proxy.stop();
    }
}
