//! Network-chaos and crash-recovery end-to-end tests: the resilient
//! client must heal a hostile network (seeded drops, truncation,
//! delays, garbage, resets via [`cestim_serve::ChaosProxy`]), heal
//! deterministic worker crashes, hedge past slow workers, and survive a
//! `kill -9` of the server binary with byte-identical re-serving.

use cestim_exec::{canonical_string, FaultPlan, Job};
use cestim_serve::{
    ChaosPlan, ChaosProxy, ClientConfig, Response, ServeClient, ServeConfig, Server,
};
use cestim_sim::{ExecJob, PredictorKind, RunConfig};
use cestim_workloads::WorkloadKind;
use serde::Value;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cestim-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_job(n: u64) -> ExecJob {
    ExecJob::Distance {
        cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
        buckets: 16 + n,
    }
}

/// Starts an in-process server plus a TCP front end on an ephemeral
/// port; returns the server handle, its address, and the acceptor.
fn start_tcp(cfg: ServeConfig) -> (Arc<Server>, SocketAddr, std::thread::JoinHandle<()>) {
    let server = Arc::new(Server::start(cfg).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.serve_tcp(listener);
        })
    };
    (server, addr, acceptor)
}

fn stop_tcp(server: Arc<Server>, acceptor: std::thread::JoinHandle<()>) {
    server.begin_shutdown();
    acceptor.join().unwrap();
    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => panic!("acceptor retained the server"),
    }
}

fn direct_payload(job: &ExecJob) -> Value {
    serde::to_value(&job.execute())
}

#[test]
fn client_heals_standard_network_chaos_to_byte_identical_payloads() {
    let cache_dir = temp_dir("net");
    let (server, addr, acceptor) = start_tcp(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    });
    let mut proxy = ChaosProxy::start(addr, ChaosPlan::standard(0xbad_cab1e)).unwrap();
    let mut client = ServeClient::new(ClientConfig {
        retry: cestim_exec::RetryPolicy {
            max_attempts: 12,
            ..cestim_exec::RetryPolicy::default()
        },
        ..ClientConfig::new(proxy.addr())
    });

    // A mix of unique and duplicate jobs, all driven through the fault
    // matrix; every payload must equal direct execution byte-for-byte.
    let jobs: Vec<ExecJob> = (0..6).map(quick_job).collect();
    for (i, job) in jobs.iter().enumerate().chain(jobs.iter().enumerate()) {
        let payload = client
            .run_job(&format!("net{i}-{}", client.report().attempts), job)
            .expect("chaos must be healed, not fatal");
        assert_eq!(
            canonical_string(&payload),
            canonical_string(&direct_payload(job)),
            "job {i} payload diverged under network chaos"
        );
    }
    assert!(
        proxy.stats().total_faults() > 0,
        "the standard plan must actually inject faults"
    );
    proxy.stop();
    stop_tcp(server, acceptor);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn client_heals_deterministic_worker_crashes_by_retry() {
    let cache_dir = temp_dir("crash");
    // Every 2nd executed job panics inside the worker; the client's
    // idempotent retry re-submits until an execution slot succeeds.
    let (server, addr, acceptor) = start_tcp(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        fault: FaultPlan {
            panic_every: 2,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    });
    let mut client = ServeClient::new(ClientConfig::new(addr));
    for i in 0..6u64 {
        let job = quick_job(100 + i);
        let payload = client
            .run_job(&format!("crash{i}"), &job)
            .expect("worker crashes must be healed by retry");
        assert_eq!(
            canonical_string(&payload),
            canonical_string(&direct_payload(&job)),
            "job {i} payload diverged across worker crashes"
        );
    }
    assert!(
        client.report().exec_errors > 0,
        "the fault plan must have crashed at least one execution"
    );
    stop_tcp(server, acceptor);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn hedged_requests_fire_for_slow_workers_and_stay_correct() {
    let cache_dir = temp_dir("hedge");
    let (server, addr, acceptor) = start_tcp(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        fault: FaultPlan {
            slow_every: 2,
            slow_ms: 400,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    });
    let mut client = ServeClient::new(ClientConfig {
        hedge_after: Some(Duration::from_millis(50)),
        ..ClientConfig::new(addr)
    });
    for i in 0..4u64 {
        let job = quick_job(200 + i);
        let payload = client.run_job(&format!("hedge{i}"), &job).unwrap();
        assert_eq!(
            canonical_string(&payload),
            canonical_string(&direct_payload(&job)),
            "job {i} payload diverged with hedging enabled"
        );
    }
    assert!(
        client.report().hedges_sent >= 1,
        "400ms slow slots must outlive the 50ms hedge floor: {:?}",
        client.report()
    );
    stop_tcp(server, acceptor);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Spawns the real `serve` binary on an ephemeral port and parses the
/// bound address from its startup line.
fn spawn_serve_bin(
    cache_dir: &std::path::Path,
    journal_dir: &std::path::Path,
) -> (
    std::process::Child,
    std::io::BufReader<std::process::ChildStdout>,
    SocketAddr,
) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--groups",
            "1",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--journal-dir",
            journal_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve binary");
    let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut reader, &mut line).expect("serve stdout");
        assert!(n > 0, "serve exited before announcing its address");
        if let Some(rest) = line.trim().strip_prefix("[serve] listening on ") {
            let text = rest.split_whitespace().next().unwrap();
            break text.parse::<SocketAddr>().expect("parse bound address");
        }
    };
    (child, reader, addr)
}

#[test]
fn kill_dash_nine_then_restart_reserves_byte_identically() {
    let dirs = (temp_dir("kill-cache"), temp_dir("kill-journal"));
    std::fs::create_dir_all(&dirs.0).unwrap();
    std::fs::create_dir_all(&dirs.1).unwrap();
    let jobs: Vec<ExecJob> = (300..304).map(quick_job).collect();

    // First incarnation: complete all jobs, then die without warning.
    let (mut child, _stdout, addr) = spawn_serve_bin(&dirs.0, &dirs.1);
    let mut client = ServeClient::new(ClientConfig::new(addr));
    let mut first_payloads = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        first_payloads.push(client.run_job(&format!("pre{i}"), job).unwrap());
    }
    child.kill().expect("kill -9 the server");
    let _ = child.wait();

    // Second incarnation over the same cache + journal: byte-identical
    // re-serving, booked as recovered work.
    let (mut child, _stdout, addr) = spawn_serve_bin(&dirs.0, &dirs.1);
    let mut client = ServeClient::new(ClientConfig::new(addr));
    for (i, job) in jobs.iter().enumerate() {
        let payload = client.run_job(&format!("post{i}"), job).unwrap();
        assert_eq!(
            canonical_string(&payload),
            canonical_string(&first_payloads[i]),
            "job {i} not re-served byte-identically after kill -9"
        );
        assert_eq!(
            canonical_string(&payload),
            canonical_string(&direct_payload(job)),
            "job {i} diverged from direct execution after recovery"
        );
    }
    let stats = client.stats().expect("stats after recovery");
    assert_eq!(
        stats["recovered"].as_u64().unwrap(),
        jobs.len() as u64,
        "every pre-kill job must be counted as recovered: {stats}"
    );
    assert!(
        stats["journal_prior_jobs"].as_u64().unwrap() >= jobs.len() as u64,
        "the resumed journal must know the prior jobs: {stats}"
    );
    // Health answers on the recovered instance too.
    match client.health().expect("health after recovery") {
        Response::Health { healthy, .. } => assert!(healthy),
        other => panic!("expected health, got {other:?}"),
    }
    child.kill().expect("stop the second incarnation");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dirs.0);
    let _ = std::fs::remove_dir_all(&dirs.1);
}
