//! Seeded fuzz test of the serve protocol parser: arbitrary byte lines
//! must always yield a structured outcome — a parsed request or a
//! [`ProtoError`] — and never a panic; a live server fed the same lines
//! must always answer with a structured error response and stay up.
//!
//! Reuses the deterministic `cestim-qa` PRNG, so any failure reproduces
//! from the seed printed in the assertion message.

use cestim_qa::XorShift64Star;
use cestim_serve::{
    parse_line, parse_response, render_request, Request, RequestLimits, Response, ServeConfig,
    Server, MAX_LINE_BYTES,
};
use cestim_sim::{EstimatorSpec, ExecJob, PredictorKind, RunConfig};
use cestim_workloads::WorkloadKind;
use std::time::Duration;

const SEED: u64 = 0x5e7e_c0de;
const ITERATIONS: u64 = 600;

/// One seed-determined adversarial line.
fn gen_line(rng: &mut XorShift64Star) -> Vec<u8> {
    let valid = render_request(&Request::Run {
        id: format!("f{}", rng.below(1000)),
        client: "fuzz".to_string(),
        priority: 1 + rng.below(100) as u32,
        deadline_ms: rng.below(10_000),
        job: ExecJob::Run {
            cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
            specs: vec![EstimatorSpec::jrs_paper()],
        },
    });
    match rng.below(6) {
        // Random binary garbage.
        0 => {
            let len = rng.below(256) as usize;
            (0..len).map(|_| rng.next_u64() as u8).collect()
        }
        // Random printable ASCII (often almost-JSON).
        1 => {
            let len = rng.below(256) as usize;
            (0..len).map(|_| (0x20 + rng.below(95)) as u8).collect()
        }
        // A valid request truncated mid-line.
        2 => {
            let cut = rng.below(valid.len() as u64) as usize;
            valid.as_bytes()[..cut].to_vec()
        }
        // A valid request with random bytes corrupted.
        3 => {
            let mut bytes = valid.into_bytes();
            for _ in 0..=rng.below(8) {
                let at = rng.below(bytes.len() as u64) as usize;
                bytes[at] = rng.next_u64() as u8;
            }
            bytes
        }
        // Structurally valid JSON that is not a valid request.
        4 => {
            let fillers = [
                r#"{"op":"run"}"#,
                r#"{"op":"run","id":7,"job":{}}"#,
                r#"{"op":"run","id":"x","priority":900,"job":{}}"#,
                r#"{"op":"run","id":"x","job":{"Smt":{"a":"compress"}}}"#,
                r#"{"op":[],"id":"x"}"#,
                r#"[{"op":"ping"}]"#,
                r#""ping""#,
                "null",
                "{}",
            ];
            fillers[rng.below(fillers.len() as u64) as usize]
                .as_bytes()
                .to_vec()
        }
        // Oversized lines, right at and beyond the cap.
        _ => {
            let extra = rng.below(4096) as usize;
            let mut bytes = vec![b'{'; MAX_LINE_BYTES + 1 + extra];
            if rng.chance(1, 2) {
                // Oversized but otherwise valid JSON prefix.
                let head = format!(r#"{{"op":"ping","pad":"{}"#, "x".repeat(64));
                bytes[..head.len()].copy_from_slice(head.as_bytes());
            }
            bytes
        }
    }
}

#[test]
fn parser_is_total_over_adversarial_lines() {
    let limits = RequestLimits::default();
    let mut rng = XorShift64Star::new(SEED);
    let mut errors = 0u64;
    for i in 0..ITERATIONS {
        let line = gen_line(&mut rng);
        let preview: Vec<u8> = line.iter().copied().take(48).collect();
        let outcome = std::panic::catch_unwind(|| parse_line(&line, &limits));
        let parsed = outcome.unwrap_or_else(|_| {
            panic!("parse_line panicked at iteration {i} (seed {SEED:#x}): {preview:?}")
        });
        if let Err(e) = parsed {
            errors += 1;
            assert!(
                !e.message.is_empty(),
                "error without a message at iteration {i} (seed {SEED:#x})"
            );
        }
        // The response parser must be just as total.
        if let Ok(text) = std::str::from_utf8(&line) {
            let _ = std::panic::catch_unwind(|| parse_response(text)).unwrap_or_else(|_| {
                panic!("parse_response panicked at iteration {i} (seed {SEED:#x})")
            });
        }
    }
    assert!(
        errors > ITERATIONS / 2,
        "the adversarial mix should mostly fail parsing, got {errors} errors"
    );
}

#[test]
fn live_server_answers_every_bad_line_and_survives() {
    let server = Server::start(ServeConfig {
        groups: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    let limits = RequestLimits::default();
    let mut rng = XorShift64Star::new(SEED ^ 0xa5a5);
    let mut sent = 0u64;
    for i in 0..ITERATIONS {
        let line = gen_line(&mut rng);
        // Only feed lines the parser rejects: every one must come back
        // as a structured error without crashing the server.
        if parse_line(&line, &limits).is_ok() {
            continue;
        }
        sent += 1;
        client.send_line(&line);
        match client.recv_timeout(Duration::from_secs(30)) {
            Some(Response::Error { code, message, .. }) => {
                assert!(!code.is_empty() && !message.is_empty());
            }
            other => {
                panic!("iteration {i} (seed {SEED:#x}): expected an error response, got {other:?}")
            }
        }
    }
    assert!(sent > 0, "the mix should contain rejected lines");
    // Still alive after the whole barrage.
    client.send(Request::Ping);
    assert_eq!(
        client.recv_timeout(Duration::from_secs(30)),
        Some(Response::Pong)
    );
    server.shutdown();
}
