//! Overload-control and crash-recovery integration tests: load-shedding
//! hysteresis, deadline-aware dispatch, cooperative mid-execution
//! cancellation, per-client circuit breakers, health/ready probes,
//! journal rotation under load, and warm-restart recovery accounting.

use cestim_exec::FaultPlan;
use cestim_serve::protocol::{REASON_BREAKER_OPEN, REASON_DEADLINE, REASON_SHEDDING};
use cestim_serve::{
    BreakerConfig, InProcClient, Request, Response, ServeConfig, Server, ShedConfig,
};
use cestim_sim::{EstimatorSpec, ExecJob, PredictorKind, RunConfig};
use cestim_workloads::WorkloadKind;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cestim-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A family of distinct quick jobs (distinct bucket counts → distinct
/// cache keys), so repeated submissions never hit the warm cache.
fn quick_job(n: u32) -> ExecJob {
    ExecJob::Distance {
        cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
        buckets: 16 + u64::from(n),
    }
}

/// A job slow enough to pin a worker for a while.
fn slow_job() -> ExecJob {
    ExecJob::Run {
        cfg: RunConfig::paper(WorkloadKind::M88ksim, 2, PredictorKind::McFarling),
        specs: vec![EstimatorSpec::jrs_paper()],
    }
}

fn run_request(id: &str, client: &str, deadline_ms: u64, job: ExecJob) -> Request {
    Request::Run {
        id: id.to_string(),
        client: client.to_string(),
        priority: 1,
        deadline_ms,
        job,
    }
}

/// Pumps responses until the admission verdict (accepted/rejected) for
/// `id` arrives.
fn await_admission(client: &InProcClient, id: &str) -> Response {
    loop {
        let resp = client.recv_timeout(WAIT).expect("server response");
        match &resp {
            Response::Accepted { id: rid, .. } | Response::Rejected { id: rid, .. }
                if rid == id =>
            {
                return resp;
            }
            Response::Error { id: Some(rid), .. } if rid == id => return resp,
            _ => {}
        }
    }
}

/// Pumps responses until the terminal result/error/rejection for `id`.
fn await_terminal(client: &InProcClient, id: &str) -> Response {
    loop {
        let resp = client.recv_timeout(WAIT).expect("server response");
        match &resp {
            Response::Result { id: rid, .. }
            | Response::Error { id: Some(rid), .. }
            | Response::Rejected { id: rid, .. }
                if rid == id =>
            {
                return resp;
            }
            _ => {}
        }
    }
}

fn stats(client: &InProcClient) -> serde::Value {
    client.send(Request::Stats);
    loop {
        if let Response::Stats(v) = client.recv_timeout(WAIT).expect("stats response") {
            return v;
        }
    }
}

#[test]
fn shedding_engages_at_high_watermark_and_releases_at_low() {
    // Capacity 4 with a 50/25 watermark pair: shedding starts once two
    // jobs are queued and stops only after the queue drains to one.
    // Every executed job carries an injected 500ms sleep, which pins the
    // single worker for a bounded, known time.
    let server = Server::start(ServeConfig {
        groups: 1,
        queue_depth: 4,
        shed: ShedConfig {
            high_pct: 50,
            low_pct: 25,
            p99_nanos: 0,
        },
        fault: FaultPlan {
            slow_every: 1,
            slow_ms: 500,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();

    // Pin the single worker so queued depth is fully under our control.
    client.send(run_request("slow", "t", 0, quick_job(50)));
    loop {
        match client.recv_timeout(WAIT).unwrap() {
            Response::Started { id, .. } if id == "slow" => break,
            _ => {}
        }
    }

    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..5u32 {
        let id = format!("q{i}");
        client.send(run_request(&id, "t", 0, quick_job(i)));
        match await_admission(&client, &id) {
            Response::Accepted { .. } => accepted.push(id),
            Response::Rejected { reason, .. } => {
                assert_eq!(reason, REASON_SHEDDING, "small queue sheds before filling");
                shed += 1;
            }
            other => panic!("unexpected admission response: {other:?}"),
        }
    }
    assert_eq!(
        accepted.len(),
        2,
        "the gate admits up to the high watermark (2 of 4 slots)"
    );
    assert_eq!(shed, 3, "everything past the watermark is shed");

    // Drain everything; depth returns to zero, which is at or below the
    // low watermark, so the next submission is admitted again. Await in
    // completion order (single worker ⇒ FIFO): pin job first, then the
    // admitted queue — the helpers discard non-matching responses.
    let _ = await_terminal(&client, "slow");
    for id in &accepted {
        match await_terminal(&client, id) {
            Response::Result { .. } => {}
            other => panic!("queued job should complete, got {other:?}"),
        }
    }
    client.send(run_request("after", "t", 0, quick_job(99)));
    match await_admission(&client, "after") {
        Response::Accepted { .. } => {}
        other => panic!("drained server must admit again, got {other:?}"),
    }
    let _ = await_terminal(&client, "after");

    let s = stats(&client);
    assert_eq!(s["shed"].as_u64().unwrap(), 3);
    assert_eq!(
        s["degraded"].as_i64().unwrap(),
        0,
        "gate exits degraded mode once depth drains"
    );
    server.shutdown();
}

#[test]
fn expired_deadline_rejects_at_dequeue_without_executing() {
    let server = Server::start(ServeConfig {
        groups: 1,
        shed: ShedConfig {
            high_pct: 0,
            ..ShedConfig::default()
        },
        fault: FaultPlan {
            slow_every: 1,
            slow_ms: 300,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    client.send(run_request("slow", "t", 0, quick_job(50)));
    loop {
        match client.recv_timeout(WAIT).unwrap() {
            Response::Started { id, .. } if id == "slow" => break,
            _ => {}
        }
    }
    // A 1ms budget cannot survive waiting behind the 300ms pin job.
    client.send(run_request("late", "t", 1, quick_job(0)));
    match await_admission(&client, "late") {
        Response::Accepted { .. } => {}
        other => panic!("queue has room, got {other:?}"),
    }
    match await_terminal(&client, "late") {
        Response::Rejected { reason, .. } => assert_eq!(reason, REASON_DEADLINE),
        other => panic!("expected deadline rejection, got {other:?}"),
    }
    let s = stats(&client);
    assert_eq!(s["deadline_rejected"].as_u64().unwrap(), 1);
    assert_eq!(
        s["executed"].as_u64().unwrap(),
        1,
        "only the pin job reached the engine; the expired ticket never did"
    );
    server.shutdown();
}

#[test]
fn mid_execution_deadline_cancels_cooperatively_and_frees_the_worker() {
    let server = Server::start(ServeConfig {
        groups: 1,
        shed: ShedConfig {
            high_pct: 0,
            ..ShedConfig::default()
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    // Starts immediately (empty queue), then overruns its 50ms budget
    // mid-simulation; the cancel token fires inside the hot loop.
    client.send(run_request("doomed", "t", 50, slow_job()));
    match await_terminal(&client, "doomed") {
        Response::Error { code, message, .. } => {
            assert_eq!(code, "deadline-exceeded");
            assert!(
                message.contains("cestim-cancel"),
                "cancel panic message, got: {message}"
            );
        }
        other => panic!("expected deadline error, got {other:?}"),
    }
    // The worker survived and picks up new work.
    client.send(run_request("next", "t", 0, quick_job(1)));
    match await_terminal(&client, "next") {
        Response::Result { .. } => {}
        other => panic!("worker must be free after a cancel, got {other:?}"),
    }
    let s = stats(&client);
    assert_eq!(s["deadline_cancelled"].as_u64().unwrap(), 1);
    server.shutdown();
}

#[test]
fn breaker_opens_after_failures_probes_after_cooldown_and_recloses() {
    let cache_dir = temp_dir("breaker");
    // Pre-warm one result so a probe can succeed even though every
    // fresh execution is forced to panic by the fault plan.
    let good = quick_job(0);
    {
        use cestim_exec::Job;
        let cache = cestim_exec::DiskCache::open(&cache_dir).unwrap();
        let output = good.execute();
        cache
            .store(&good.cache_key(), &good.label(), &output)
            .unwrap();
    }
    let server = Server::start(ServeConfig {
        groups: 1,
        cache_dir: Some(cache_dir.clone()),
        breaker: BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(100),
        },
        fault: FaultPlan {
            panic_every: 1, // every executed (uncached) job crashes
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();

    // Two consecutive execution failures trip the client's breaker.
    for i in 1..=2u32 {
        let id = format!("bad{i}");
        client.send(run_request(&id, "flaky", 0, quick_job(i)));
        match await_terminal(&client, &id) {
            Response::Error { code, .. } => assert_eq!(code, "execution"),
            other => panic!("fault plan must crash the job, got {other:?}"),
        }
    }
    client.send(run_request("fast-fail", "flaky", 0, quick_job(3)));
    match await_admission(&client, "fast-fail") {
        Response::Rejected { reason, .. } => assert_eq!(reason, REASON_BREAKER_OPEN),
        other => panic!("open breaker must reject, got {other:?}"),
    }

    // After the cooldown one probe is admitted; the warm cache makes it
    // succeed, which closes the breaker for good.
    std::thread::sleep(Duration::from_millis(150));
    client.send(run_request("probe", "flaky", 0, good.clone()));
    match await_terminal(&client, "probe") {
        Response::Result { cached, .. } => assert!(cached, "probe is served warm"),
        other => panic!("half-open probe should pass, got {other:?}"),
    }
    client.send(run_request("healed", "flaky", 0, good));
    match await_terminal(&client, "healed") {
        Response::Result { .. } => {}
        other => panic!("breaker must be closed again, got {other:?}"),
    }

    let s = stats(&client);
    assert_eq!(s["breaker_opened"].as_u64().unwrap(), 1);
    assert_eq!(s["breaker_rejected"].as_u64().unwrap(), 1);
    assert_eq!(s["breakers_open"].as_u64().unwrap(), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn health_and_ready_verbs_report_drain_state() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let client = server.client();
    client.send(Request::Health);
    match client.recv_timeout(WAIT).unwrap() {
        Response::Health {
            healthy,
            draining,
            degraded,
        } => {
            assert!(healthy);
            assert!(!draining);
            assert!(!degraded);
        }
        other => panic!("expected health, got {other:?}"),
    }
    client.send(Request::Ready);
    match client.recv_timeout(WAIT).unwrap() {
        Response::Ready { ready, queued } => {
            assert!(ready);
            assert_eq!(queued, 0);
        }
        other => panic!("expected ready, got {other:?}"),
    }
    // Draining flips readiness off while health stays answerable.
    server.begin_shutdown();
    client.send(Request::Health);
    match client.recv_timeout(WAIT).unwrap() {
        Response::Health {
            healthy, draining, ..
        } => {
            assert!(healthy);
            assert!(draining);
        }
        other => panic!("expected health, got {other:?}"),
    }
    client.send(Request::Ready);
    match client.recv_timeout(WAIT).unwrap() {
        Response::Ready { ready, .. } => assert!(!ready),
        other => panic!("expected ready, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn journal_rotates_under_load_and_keeps_serving() {
    let dirs = (temp_dir("rot-cache"), temp_dir("rot-journal"));
    let server = Server::start(ServeConfig {
        groups: 1,
        cache_dir: Some(dirs.0.clone()),
        journal_dir: Some(dirs.1.clone()),
        journal_max_bytes: 64, // rotate after every record or two
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    for i in 0..6u32 {
        let id = format!("r{i}");
        client.send(run_request(&id, "t", 0, quick_job(i)));
        match await_terminal(&client, &id) {
            Response::Result { .. } => {}
            other => panic!("job {i} should complete, got {other:?}"),
        }
    }
    let s = stats(&client);
    assert!(
        s["journal_rotations"].as_u64().unwrap() >= 1,
        "tiny threshold must force at least one rotation: {s}"
    );
    server.shutdown();
    assert!(
        dirs.1.join("run.prev.jsonl").exists(),
        "rotation leaves the previous segment behind"
    );
    assert!(dirs.1.join("run.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dirs.0);
    let _ = std::fs::remove_dir_all(&dirs.1);
}

#[test]
fn restart_recovers_journaled_work_from_the_cache() {
    let dirs = (temp_dir("rec-cache"), temp_dir("rec-journal"));
    let cfg = ServeConfig {
        groups: 1,
        cache_dir: Some(dirs.0.clone()),
        journal_dir: Some(dirs.1.clone()),
        ..ServeConfig::default()
    };
    let first = Server::start(cfg.clone()).unwrap();
    let client = first.client();
    client.send(run_request("a", "t", 0, quick_job(0)));
    let first_payload = match await_terminal(&client, "a") {
        Response::Result { payload, .. } => payload,
        other => panic!("expected result, got {other:?}"),
    };
    first.shutdown();

    // A restarted incarnation re-serves the same request byte-identically
    // and books it as recovered (journaled by the previous incarnation).
    let second = Server::start(cfg).unwrap();
    let client = second.client();
    client.send(run_request("a2", "t", 0, quick_job(0)));
    match await_terminal(&client, "a2") {
        Response::Result {
            cached, payload, ..
        } => {
            assert!(cached, "recovered work is served warm");
            assert_eq!(
                cestim_exec::canonical_string(&payload),
                cestim_exec::canonical_string(&first_payload),
                "recovery must be byte-identical"
            );
        }
        other => panic!("expected result, got {other:?}"),
    }
    let s = stats(&client);
    assert_eq!(s["recovered"].as_u64().unwrap(), 1);
    assert!(s["journal_prior_jobs"].as_u64().unwrap() >= 1);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dirs.0);
    let _ = std::fs::remove_dir_all(&dirs.1);
}
