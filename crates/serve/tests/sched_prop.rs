//! Property tests for the DRR admission queue under seeded adversarial
//! churn: clients joining and leaving, priority skew rewriting lane
//! weights, bursty pushes interleaved with pops, and full drains. The
//! invariants: every admitted ticket is served exactly once (lane GC
//! never drops queued work), per-client FIFO order holds, the reported
//! length is always consistent, and weighted fairness favors heavy
//! lanes by roughly their weight ratio under saturation.
//!
//! Failures reproduce from the seed in the assertion message, the same
//! convention as the protocol fuzz suite.

use cestim_qa::XorShift64Star;
use cestim_serve::{DrrQueue, Ticket};
use cestim_sim::{ExecJob, PredictorKind, RunConfig};
use cestim_workloads::WorkloadKind;
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Instant;

const SEED: u64 = 0xd44_5eed;
const CASES: u64 = 24;
const ROUNDS: u64 = 400;

fn ticket(seq: u64, client: &str, priority: u32) -> Ticket {
    let job = ExecJob::Distance {
        cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
        buckets: 64,
    };
    let key = cestim_exec::CacheKey {
        schema: 0,
        content: seq.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    };
    // The receiver is dropped; this suite never sends on `reply`.
    let (reply, _rx) = mpsc::channel();
    Ticket {
        seq,
        id: format!("t{seq}"),
        client: client.to_string(),
        priority,
        job,
        key,
        shard: 0,
        enqueued: Instant::now(),
        deadline: None,
        enqueued_span_nanos: 0,
        reply,
    }
}

#[test]
fn churn_never_loses_or_duplicates_work_and_keeps_fifo_per_client() {
    let rng = XorShift64Star::new(SEED);
    for case in 0..CASES {
        let mut case_rng = rng.child(case);
        let capacity = 4 + case_rng.below(60) as usize;
        let quantum = 1 + case_rng.below(8);
        let mut q = DrrQueue::new(capacity, quantum);
        let mut seq = 0u64;
        let mut admitted: Vec<(u64, String)> = Vec::new();
        let mut popped: Vec<(u64, String)> = Vec::new();
        // The client universe drifts: the active window slides forward,
        // so early clients stop pushing (leave) and new names join.
        for round in 0..ROUNDS {
            let window_base = round / 50; // leave/join every ~50 rounds
            if case_rng.below(100) < 60 {
                let burst = 1 + case_rng.below(4);
                for _ in 0..burst {
                    let c = window_base + case_rng.below(4);
                    let client = format!("c{c}");
                    let priority = 1 + case_rng.below(9) as u32;
                    seq += 1;
                    match q.push(ticket(seq, &client, priority)) {
                        Ok(()) => admitted.push((seq, client)),
                        Err(bounced) => assert_eq!(
                            bounced.seq, seq,
                            "case {case} (seed {SEED:#x}): push must bounce the same ticket"
                        ),
                    }
                }
            } else {
                for _ in 0..=case_rng.below(3) {
                    if let Some(t) = q.pop() {
                        popped.push((t.seq, t.client));
                    }
                }
            }
            assert_eq!(
                q.len(),
                admitted.len() - popped.len(),
                "case {case} (seed {SEED:#x}): length must track admissions minus pops"
            );
            assert!(
                q.len() <= capacity,
                "case {case} (seed {SEED:#x}): length above capacity"
            );
        }
        // Full drain: everything admitted must come out exactly once.
        while let Some(t) = q.pop() {
            popped.push((t.seq, t.client));
        }
        assert_eq!(
            admitted.len(),
            popped.len(),
            "case {case} (seed {SEED:#x}): admitted and served counts differ"
        );
        let mut admitted_sorted: Vec<u64> = admitted.iter().map(|(s, _)| *s).collect();
        let mut popped_sorted: Vec<u64> = popped.iter().map(|(s, _)| *s).collect();
        admitted_sorted.sort_unstable();
        popped_sorted.sort_unstable();
        assert_eq!(
            admitted_sorted, popped_sorted,
            "case {case} (seed {SEED:#x}): served set must equal admitted set"
        );
        // Per-client FIFO: seqs are handed out in push order per lane.
        let mut last_seen: HashMap<&str, u64> = HashMap::new();
        for (s, client) in &popped {
            let prev = last_seen.insert(client.as_str(), *s).unwrap_or(0);
            assert!(
                prev < *s,
                "case {case} (seed {SEED:#x}): client {client} served out of order"
            );
        }
    }
}

#[test]
fn saturated_lanes_share_service_by_weight() {
    let rng = XorShift64Star::new(SEED ^ 0xfa1e);
    for case in 0..8u64 {
        let mut case_rng = rng.child(case);
        let quantum = 1 + case_rng.below(4);
        let heavy_weight = 3 + case_rng.below(6); // 3..=8
        let per_client = 40usize;
        let mut q = DrrQueue::new(per_client * 2, quantum);
        let mut seq = 0u64;
        // Both lanes fully backlogged before any service.
        for _ in 0..per_client {
            seq += 1;
            q.push(ticket(seq, "heavy", heavy_weight as u32)).unwrap();
            seq += 1;
            q.push(ticket(seq, "light", 1)).unwrap();
        }
        // Serve only the contended prefix; under DRR the heavy lane
        // should get close to `heavy_weight` times the light lane's
        // share (exact at rotor-credit boundaries, so allow slack 1
        // quantum per lane).
        let serve = per_client; // half the backlog
        let mut heavy_served = 0i64;
        let mut light_served = 0i64;
        for _ in 0..serve {
            match q.pop().expect("backlogged queue") {
                t if t.client == "heavy" => heavy_served += 1,
                _ => light_served += 1,
            }
        }
        let expected_light = serve as i64 / (heavy_weight as i64 + 1);
        let slack = quantum as i64 + 1;
        assert!(
            (light_served - expected_light).abs() <= slack,
            "case {case} (seed {SEED:#x}): light lane served {light_served}, \
             expected about {expected_light} (weight {heavy_weight}:1, quantum {quantum}, \
             heavy {heavy_served})"
        );
        // The rest still drains completely — weighting never starves.
        let mut remaining = 0usize;
        while q.pop().is_some() {
            remaining += 1;
        }
        assert_eq!(remaining, per_client, "case {case}: tail must drain fully");
    }
}
