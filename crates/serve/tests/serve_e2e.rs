//! End-to-end server tests: cold/warm cache behavior, payload identity
//! with direct execution, backpressure, GC sweeps, journaling, and the
//! TCP front end.

use cestim_exec::{canonical_string, CacheKey, DiskCache, Job};
use cestim_serve::load::{ServeConn, TcpConn};
use cestim_serve::{Request, RequestLimits, Response, ServeConfig, Server, ShedConfig};
use cestim_sim::{EstimatorSpec, ExecJob, PredictorKind, RunConfig};
use cestim_workloads::WorkloadKind;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cestim-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_job() -> ExecJob {
    ExecJob::Distance {
        cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
        buckets: 16,
    }
}

fn run_request(id: &str, client: &str, priority: u32, job: ExecJob) -> Request {
    Request::Run {
        id: id.to_string(),
        client: client.to_string(),
        priority,
        deadline_ms: 0,
        job,
    }
}

/// Drains responses for `id` until its terminal result/error arrives.
fn await_terminal(client: &cestim_serve::InProcClient, id: &str) -> Response {
    loop {
        let resp = client.recv_timeout(WAIT).expect("server response");
        match &resp {
            Response::Result { id: rid, .. } | Response::Error { id: Some(rid), .. }
                if rid == id =>
            {
                return resp;
            }
            _ => {}
        }
    }
}

#[test]
fn cold_then_warm_run_matches_direct_execution() {
    let cache_dir = temp_dir("warm");
    let server = Server::start(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    let job = quick_job();

    client.send(run_request("cold", "t", 1, job.clone()));
    // Response order per request is accepted → started → result.
    match client.recv_timeout(WAIT).unwrap() {
        Response::Accepted { id, .. } => assert_eq!(id, "cold"),
        other => panic!("expected accepted, got {other:?}"),
    }
    match client.recv_timeout(WAIT).unwrap() {
        Response::Started { id, .. } => assert_eq!(id, "cold"),
        other => panic!("expected started, got {other:?}"),
    }
    let cold_payload = match client.recv_timeout(WAIT).unwrap() {
        Response::Result {
            id,
            cached,
            payload,
            ..
        } => {
            assert_eq!(id, "cold");
            assert!(!cached, "first run must execute");
            payload
        }
        other => panic!("expected result, got {other:?}"),
    };

    client.send(run_request("warm", "t", 1, job.clone()));
    let warm = await_terminal(&client, "warm");
    let warm_payload = match warm {
        Response::Result {
            cached, payload, ..
        } => {
            assert!(cached, "second identical run must hit the cache");
            payload
        }
        other => panic!("expected result, got {other:?}"),
    };

    // Server payloads are byte-identical to direct execution.
    let direct = serde::to_value(&job.execute());
    assert_eq!(canonical_string(&cold_payload), canonical_string(&direct));
    assert_eq!(canonical_string(&warm_payload), canonical_string(&direct));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn backpressure_rejects_when_shard_queue_is_full() {
    // One worker, one queue slot: while the worker chews a slow job,
    // the second submission occupies the slot and later ones bounce.
    // Shedding is disabled so the hard queue-full path is what rejects
    // (at capacity 1 the shed watermark would otherwise fire first).
    let server = Server::start(ServeConfig {
        groups: 1,
        queue_depth: 1,
        shed: ShedConfig {
            high_pct: 0,
            ..ShedConfig::default()
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    let slow = ExecJob::Run {
        cfg: RunConfig::paper(WorkloadKind::M88ksim, 2, PredictorKind::McFarling),
        specs: vec![EstimatorSpec::jrs_paper()],
    };
    client.send(run_request("slow", "a", 1, slow));
    // Wait until the worker has actually started the slow job, so the
    // queue slot is free for exactly one follow-up.
    loop {
        match client.recv_timeout(WAIT).unwrap() {
            Response::Started { id, .. } if id == "slow" => break,
            _ => {}
        }
    }
    let mut accepted = 0;
    let mut rejected = 0;
    for i in 0..4 {
        client.send(run_request(&format!("q{i}"), "a", 1, quick_job()));
        match client.recv_timeout(WAIT).unwrap() {
            Response::Accepted { .. } => accepted += 1,
            Response::Rejected {
                reason,
                queue_depth,
                ..
            } => {
                assert_eq!(reason, "queue-full");
                assert_eq!(queue_depth, 1);
                rejected += 1;
            }
            other => panic!("expected accepted/rejected, got {other:?}"),
        }
    }
    assert_eq!(accepted, 1, "exactly one queue slot was free");
    assert_eq!(rejected, 3, "the rest must bounce with backpressure");
    server.shutdown();
}

#[test]
fn gc_sweep_removes_stale_and_keeps_fresh() {
    let cache_dir = temp_dir("gc");
    // Plant a stale entry under a foreign schema salt.
    {
        let cache = DiskCache::open(&cache_dir).unwrap();
        let stale_key = CacheKey {
            schema: 0xdead_beef,
            content: 42,
        };
        cache
            .store(&stale_key, "stale", &serde_json::json!({"old": true}))
            .unwrap();
        assert_eq!(cache.len().unwrap(), 1);
    }
    let server = Server::start(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();

    // Create a fresh entry, then sweep.
    client.send(run_request("fresh", "t", 1, quick_job()));
    let Response::Result { cached: false, .. } = await_terminal(&client, "fresh") else {
        panic!("fresh run must execute");
    };
    client.send(Request::CacheGc);
    match client.recv_timeout(WAIT).unwrap() {
        Response::Gc { removed } => assert_eq!(removed, 1, "exactly the stale entry"),
        other => panic!("expected gc, got {other:?}"),
    }
    // The fresh entry survived: an identical run is a warm hit.
    client.send(run_request("again", "t", 1, quick_job()));
    let Response::Result { cached: true, .. } = await_terminal(&client, "again") else {
        panic!("fresh entry must survive the sweep");
    };
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn scheduled_gc_runs_every_n_admissions() {
    let cache_dir = temp_dir("gc-sched");
    {
        let cache = DiskCache::open(&cache_dir).unwrap();
        for content in 0..3u64 {
            let stale = CacheKey {
                schema: 0xbad0 + content,
                content,
            };
            cache
                .store(&stale, "stale", &serde_json::json!({"n": content}))
                .unwrap();
        }
    }
    let server = Server::start(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        gc_every: 1, // sweep on every admission
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    client.send(run_request("r", "t", 1, quick_job()));
    let _ = await_terminal(&client, "r");
    client.send(Request::Stats);
    let stats = loop {
        if let Response::Stats(v) = client.recv_timeout(WAIT).unwrap() {
            break v;
        }
    };
    assert!(stats.get("gc_sweeps").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(stats.get("gc_removed").unwrap().as_u64().unwrap(), 3);
    server.shutdown();
    let cache = DiskCache::open(&cache_dir).unwrap();
    assert_eq!(cache.len().unwrap(), 1, "only the fresh result remains");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn journal_streams_job_outcomes() {
    let dirs = (temp_dir("journal-cache"), temp_dir("journal"));
    let server = Server::start(ServeConfig {
        cache_dir: Some(dirs.0.clone()),
        journal_dir: Some(dirs.1.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let client = server.client();
    client.send(run_request("a", "t", 1, quick_job()));
    let _ = await_terminal(&client, "a");
    client.send(run_request("b", "t", 1, quick_job()));
    let _ = await_terminal(&client, "b");
    server.shutdown();
    let text = std::fs::read_to_string(dirs.1.join("run.jsonl")).unwrap();
    assert!(text.contains("\"ok\""), "first run journaled as ok: {text}");
    assert!(
        text.contains("\"cached\""),
        "second run journaled as cached: {text}"
    );
    let _ = std::fs::remove_dir_all(&dirs.0);
    let _ = std::fs::remove_dir_all(&dirs.1);
}

#[test]
fn malformed_lines_get_structured_errors_and_server_survives() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let client = server.client();
    let cases: &[(&[u8], &str)] = &[
        (b"{nope", "malformed-json"),
        (&[0xff, 0xfe, 0x00], "malformed-json"),
        (b"[1,2,3]", "bad-request"),
        (br#"{"op":"run","id":"x","job":{"What":{}}}"#, "bad-request"),
    ];
    for (bytes, want) in cases {
        client.send_line(bytes);
        match client.recv_timeout(WAIT).unwrap() {
            Response::Error { code, .. } => assert_eq!(&code, want),
            other => panic!("expected error, got {other:?}"),
        }
    }
    // Oversized line.
    client.send_line(&vec![b'a'; cestim_serve::MAX_LINE_BYTES + 1]);
    match client.recv_timeout(WAIT).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "oversized"),
        other => panic!("expected error, got {other:?}"),
    }
    // Out-of-bounds specs fail validation on both submission paths.
    let oversize_job = || {
        let mut cfg = RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare);
        cfg.scale = RequestLimits::default().max_scale + 1;
        ExecJob::Distance { cfg, buckets: 16 }
    };
    client.send(run_request("big", "t", 1, oversize_job()));
    match client.recv_timeout(WAIT).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id.as_deref(), Some("big"));
            assert_eq!(code, "invalid-spec");
        }
        other => panic!("expected error, got {other:?}"),
    }
    let line = cestim_serve::render_request(&run_request("big2", "t", 1, oversize_job()));
    client.send_line(line.as_bytes());
    match client.recv_timeout(WAIT).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id.as_deref(), Some("big2"));
            assert_eq!(code, "invalid-spec");
        }
        other => panic!("expected error, got {other:?}"),
    }
    // The server is still healthy.
    client.send(Request::Ping);
    assert_eq!(client.recv_timeout(WAIT).unwrap(), Response::Pong);
    server.shutdown();
}

#[test]
fn unknown_family_names_get_invalid_spec_on_both_paths() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let client = server.client();

    // In-proc: a run request whose job names a predictor this build
    // does not know. The envelope is well-formed, so the rejection is
    // a spec error, not a bad request.
    let bad_predictor = cestim_serve::render_request(&run_request("p", "t", 1, quick_job()))
        .replace("\"Gshare\"", "\"Zephyr\"");
    client.send_line(bad_predictor.as_bytes());
    match client.recv_timeout(WAIT).unwrap() {
        Response::Error { id, code, message } => {
            assert_eq!(id.as_deref(), Some("p"));
            assert_eq!(code, "invalid-spec");
            assert!(message.contains("Zephyr"), "{message}");
        }
        other => panic!("expected error, got {other:?}"),
    }

    // Same for an unknown estimator family.
    let bad_estimator = cestim_serve::render_request(&run_request(
        "e",
        "t",
        1,
        ExecJob::Run {
            cfg: RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare),
            specs: vec![EstimatorSpec::AlwaysLow],
        },
    ))
    .replace("\"AlwaysLow\"", "\"Oracular\"");
    client.send_line(bad_estimator.as_bytes());
    match client.recv_timeout(WAIT).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id.as_deref(), Some("e"));
            assert_eq!(code, "invalid-spec");
        }
        other => panic!("expected error, got {other:?}"),
    }

    // TCP front end: the same unknown-predictor line gets the same
    // structured rejection and the connection stays usable.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::sync::Arc::new(server);
    let acceptor = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener))
    };
    let mut conn = TcpConn::connect(&addr).unwrap();
    conn.send_raw_line(&bad_predictor).unwrap();
    match conn.recv_response(WAIT).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id.as_deref(), Some("p"));
            assert_eq!(code, "invalid-spec");
        }
        other => panic!("expected error, got {other:?}"),
    }
    conn.send_request(&Request::Ping).unwrap();
    assert_eq!(conn.recv_response(WAIT).unwrap(), Response::Pong);

    conn.send_request(&Request::Shutdown).unwrap();
    loop {
        match conn.recv_response(WAIT) {
            Ok(Response::ShuttingDown) | Err(_) => break,
            Ok(_) => {}
        }
    }
    acceptor.join().unwrap().unwrap();
    match std::sync::Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => panic!("acceptor retained the server"),
    }
}

#[test]
fn tcp_front_end_serves_and_shuts_down() {
    let cache_dir = temp_dir("tcp");
    let server = Server::start(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::sync::Arc::new(server);
    let acceptor = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener))
    };

    let mut conn = TcpConn::connect(&addr).unwrap();
    let job = quick_job();
    conn.send_request(&run_request("t1", "net", 2, job.clone()))
        .unwrap();
    let payload = loop {
        match conn.recv_response(WAIT).unwrap() {
            Response::Result { id, payload, .. } => {
                assert_eq!(id, "t1");
                break payload;
            }
            Response::Error { .. } => panic!("unexpected error"),
            _ => {}
        }
    };
    let direct = serde::to_value(&job.execute());
    assert_eq!(canonical_string(&payload), canonical_string(&direct));

    // A raw malformed line over TCP yields a structured error.
    conn.send_request(&Request::Ping).unwrap();
    assert_eq!(conn.recv_response(WAIT).unwrap(), Response::Pong);

    conn.send_request(&Request::Shutdown).unwrap();
    loop {
        match conn.recv_response(WAIT) {
            Ok(Response::ShuttingDown) | Err(_) => break,
            Ok(_) => {}
        }
    }
    acceptor.join().unwrap().unwrap();
    match std::sync::Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => panic!("acceptor retained the server"),
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}
