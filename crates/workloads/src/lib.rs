//! # cestim-workloads
//!
//! Synthetic analogs of the SPECint95 benchmarks the paper evaluates,
//! written as real algorithms in the `cestim-isa` instruction set.
//!
//! We do not have the SPECint95 sources, inputs, or SimpleScalar binaries;
//! what the confidence estimators observe, however, is only the *dynamic
//! conditional branch stream*. Each analog therefore implements an actual
//! algorithm of the same flavour as its namesake, over deterministic
//! pseudo-random inputs, tuned so the qualitative branch profile survives:
//!
//! | analog | algorithm | branch character |
//! |---|---|---|
//! | `compress` | run-length + dictionary coder over skewed bytes | data-dependent match/length branches, moderate predictability |
//! | `gcc` | tokenizer + parser state machine over pseudo-source | large branch trees, many static sites |
//! | `perl` | naive multi-pattern text matcher + opcode dispatch | inner-loop breaks, dispatch branches |
//! | `go` | board evaluator with neighbour checks on a random board | hardest to predict (the paper's `go` is too) |
//! | `m88ksim` | fetch/decode/execute loop emulating a tiny guest CPU | highly repetitive, very predictable |
//! | `xlisp` | cons-list building, recursive traversal, mark pass | recursion (call/ret), biased data branches |
//! | `vortex` | hash-indexed record store, lookup-heavy mix | probe-hit branches, very predictable |
//! | `ijpeg` | 8×8 block transform, quantize with clamping, zero-RLE | fixed loops + biased clamps, predictable |
//!
//! Every workload is parameterized by a `scale` factor (iterations of its
//! outer loop) and leaves an algorithm checksum in [`CHECKSUM_REG`], which
//! the unit tests verify against a Rust reference implementation — the
//! programs are real computations, not branch noise generators.
//!
//! ## Example
//!
//! ```
//! use cestim_isa::Machine;
//! use cestim_workloads::{WorkloadKind, CHECKSUM_REG};
//!
//! let w = WorkloadKind::Compress.build(1);
//! let mut m = Machine::new(&w.program);
//! m.run(&w.program, u64::MAX);
//! assert!(m.halted());
//! assert_ne!(m.reg(CHECKSUM_REG), 0);
//! ```

#![warn(missing_docs)]

pub mod compress;
pub mod gcc;
pub mod go;
pub mod ijpeg;
pub mod m88ksim;
pub mod perl;
pub mod vortex;
pub mod xlisp;

use cestim_isa::{Program, Reg};

/// Register each workload leaves its final checksum in.
pub const CHECKSUM_REG: Reg = Reg::U4;

/// A buildable benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name matching the SPECint95 analog ("compress", "go", ...).
    pub name: &'static str,
    /// One-line description of the algorithm.
    pub description: &'static str,
    /// The executable program.
    pub program: Program,
}

/// The eight SPECint95 analogs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum WorkloadKind {
    /// Run-length + dictionary coder (analog of `compress`).
    Compress,
    /// Tokenizer and parser state machine (analog of `gcc`).
    Gcc,
    /// Multi-pattern text matcher with opcode dispatch (analog of `perl`).
    Perl,
    /// Board-position evaluator (analog of `go`).
    Go,
    /// Guest-CPU emulator main loop (analog of `m88ksim`).
    M88ksim,
    /// Cons-list interpreter with recursion (analog of `xlisp`).
    Xlisp,
    /// Hash-indexed record store (analog of `vortex`).
    Vortex,
    /// 8×8 block transform and entropy pre-pass (analog of `ijpeg`).
    Ijpeg,
}

impl WorkloadKind {
    /// All workloads in the paper's table order.
    pub fn all() -> [WorkloadKind; 8] {
        [
            WorkloadKind::Compress,
            WorkloadKind::Gcc,
            WorkloadKind::Perl,
            WorkloadKind::Go,
            WorkloadKind::M88ksim,
            WorkloadKind::Xlisp,
            WorkloadKind::Vortex,
            WorkloadKind::Ijpeg,
        ]
    }

    /// The workload's short name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Compress => "compress",
            WorkloadKind::Gcc => "gcc",
            WorkloadKind::Perl => "perl",
            WorkloadKind::Go => "go",
            WorkloadKind::M88ksim => "m88ksim",
            WorkloadKind::Xlisp => "xlisp",
            WorkloadKind::Vortex => "vortex",
            WorkloadKind::Ijpeg => "ijpeg",
        }
    }

    /// Parses a workload name.
    pub fn from_name(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::all().into_iter().find(|w| w.name() == name)
    }

    /// Builds the workload at the given scale (outer-loop iterations; the
    /// dynamic instruction count grows roughly linearly with `scale`),
    /// using the default ("train") input.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn build(self, scale: u32) -> Workload {
        self.build_salted(scale, 0)
    }

    /// Builds the workload with an alternative input: `salt` reseeds the
    /// input generator, producing a different-but-same-flavour data set
    /// (like SPEC's train vs ref inputs). Salt 0 is the default input.
    /// The *code* is identical across salts; only the data differs — the
    /// knob exists to evaluate profile-based techniques off their training
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn build_salted(self, scale: u32, salt: u32) -> Workload {
        assert!(scale > 0, "scale must be positive");
        match self {
            WorkloadKind::Compress => compress::build(scale, salt),
            WorkloadKind::Gcc => gcc::build(scale, salt),
            WorkloadKind::Perl => perl::build(scale, salt),
            WorkloadKind::Go => go::build(scale, salt),
            WorkloadKind::M88ksim => m88ksim::build(scale, salt),
            WorkloadKind::Xlisp => xlisp::build(scale, salt),
            WorkloadKind::Vortex => vortex::build(scale, salt),
            WorkloadKind::Ijpeg => ijpeg::build(scale, salt),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic input bytes shared by the workload generators.
///
/// A tiny xorshift keeps the crate's only `rand` use in the generators that
/// need shaped distributions.
pub(crate) fn xorshift_bytes(seed: u32, len: usize, modulo: u32) -> Vec<u32> {
    let mut x = seed.max(1);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x % modulo
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn names_round_trip() {
        for k in WorkloadKind::all() {
            assert_eq!(WorkloadKind::from_name(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
    }

    #[test]
    fn all_workloads_halt_and_produce_checksums() {
        for k in WorkloadKind::all() {
            let w = k.build(1);
            let mut m = Machine::new(&w.program);
            let steps = m.run(&w.program, 50_000_000);
            assert!(m.halted(), "{} did not halt", k);
            assert!(steps > 10_000, "{} too small: {} insts", k, steps);
            assert_ne!(m.reg(CHECKSUM_REG), 0, "{} produced a zero checksum", k);
        }
    }

    #[test]
    fn scale_grows_dynamic_instruction_count() {
        for k in [WorkloadKind::Compress, WorkloadKind::Go] {
            let count = |scale| {
                let w = k.build(scale);
                let mut m = Machine::new(&w.program);
                m.run(&w.program, u64::MAX)
            };
            let one = count(1);
            let three = count(3);
            assert!(
                three > 2 * one,
                "{k}: scale 3 ({three}) should be ~3x scale 1 ({one})"
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let run = || {
            let w = WorkloadKind::Perl.build(1);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            m.reg(CHECKSUM_REG)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn xorshift_is_deterministic_and_bounded() {
        let a = xorshift_bytes(42, 100, 256);
        let b = xorshift_bytes(42, 100, 256);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v < 256));
        assert_ne!(a, xorshift_bytes(43, 100, 256));
    }

    #[test]
    fn every_workload_has_branches() {
        for k in WorkloadKind::all() {
            let w = k.build(1);
            assert!(
                w.program.static_branch_count() >= 4,
                "{} has too few branch sites",
                k
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = WorkloadKind::Go.build(0);
    }
}
