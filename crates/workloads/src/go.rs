//! `go` analog: board-position evaluator over a random 19×19 board.
//!
//! SPECint95 `go` has the worst branch behaviour of the suite: its
//! evaluation functions branch on essentially random board contents. This
//! analog evaluates liberties and a diagonal pattern for every stone on a
//! pseudo-random 19×19 board, mutating one cell per pass so consecutive
//! passes stay decorrelated — the branches remain data-dependent and hard
//! to predict, like the original.

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

const SIZE: u32 = 19;
const CELLS: u32 = SIZE * SIZE;
/// Evaluation passes per unit of scale.
const PASSES_PER_SCALE: u32 = 12;

/// Board with *clustered* stones: random-walk chains over an empty board.
///
/// Real game positions have dense fighting regions and empty space; a
/// uniformly random board would make every branch equally hard and erase
/// the misprediction clustering the paper's §4 depends on. The row-major
/// evaluation scan turns spatial clusters into temporal bursts of
/// hard-to-predict branches.
pub fn board(salt: u32) -> Vec<u32> {
    let mut b = vec![0u32; CELLS as usize];
    let rnd = crate::xorshift_bytes(
        0x60B0_A3D1 ^ salt.wrapping_mul(0x9E37_79B9),
        40 * (2 + 8),
        u32::MAX,
    );
    let mut r = rnd.iter().copied();
    for _ in 0..40 {
        let mut pos = r.next().unwrap() % CELLS;
        let colour = 1 + r.next().unwrap() % 2;
        for _ in 0..8 {
            b[pos as usize] = colour;
            let dir = r.next().unwrap() % 4;
            let (row, col) = (pos / SIZE, pos % SIZE);
            let (nr, nc) = match dir {
                0 if row > 0 => (row - 1, col),
                1 if row < SIZE - 1 => (row + 1, col),
                2 if col > 0 => (row, col - 1),
                _ if col < SIZE - 1 => (row, col + 1),
                _ => (row, col),
            };
            pos = nr * SIZE + nc;
        }
    }
    b
}

/// Reference implementation mirrored by the assembly.
pub fn reference(board: &[u32], scale: u32) -> u32 {
    let mut b = board.to_vec();
    let mut total = 0u32;
    let passes = scale * PASSES_PER_SCALE;
    for pass in 0..passes {
        let mut score = 0u32;
        for r in 0..SIZE {
            for c in 0..SIZE {
                let idx = (r * SIZE + c) as usize;
                let v = b[idx];
                if v == 0 {
                    continue;
                }
                let mut libs = 0u32;
                if r > 0 && b[idx - SIZE as usize] == 0 {
                    libs += 1;
                }
                if r < SIZE - 1 && b[idx + SIZE as usize] == 0 {
                    libs += 1;
                }
                if c > 0 && b[idx - 1] == 0 {
                    libs += 1;
                }
                if c < SIZE - 1 && b[idx + 1] == 0 {
                    libs += 1;
                }
                if v == 1 {
                    score = score.wrapping_add(libs);
                } else {
                    score = score.wrapping_sub(libs);
                }
                if r > 0 && c > 0 && b[idx - SIZE as usize - 1] == v {
                    score = score.wrapping_add(2);
                }
            }
        }
        total = total.wrapping_add(score);
        // Mutate a *contiguous* run of cells: localized novelty, so the
        // next pass hits a burst of freshly unpredictable branches.
        for k in 0..8u32 {
            let m = ((pass.wrapping_mul(89)).wrapping_add(k) % CELLS) as usize;
            b[m] = (b[m] + 1) % 3;
        }
    }
    total | 1
}

/// Builds the workload.
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let board_data = board(salt);
    let mut b = ProgramBuilder::new();
    let base = b.alloc(&board_data);

    // S0 = &board, S1 = SIZE, S2 = total, S3 = pass, S4 = passes,
    // S5 = score, S6 = SIZE-1, T0 = r, T1 = c, T2 = idx, T3 = v, T4 = libs.
    b.li(S0, base as i32);
    b.li(S1, SIZE as i32);
    b.li(S2, 0);
    b.li(S3, 0);
    b.li(S4, (scale * PASSES_PER_SCALE) as i32);
    b.li(S6, (SIZE - 1) as i32);

    let pass_top = b.label();
    let pass_end = b.label();
    b.bind(pass_top);
    b.bge(S3, S4, pass_end);
    b.li(S5, 0); // score

    b.li(T0, 0); // r
    let row_top = b.label();
    let row_end = b.label();
    b.bind(row_top);
    b.bge(T0, S1, row_end);
    b.li(T1, 0); // c
                 // S7 = row base = r * SIZE
    b.mul(S7, T0, S1);
    let col_top = b.label();
    let col_end = b.label();
    let cell_next = b.label();
    b.bind(col_top);
    b.bge(T1, S1, col_end);
    // idx, v
    b.add(T2, S7, T1);
    b.add(T7, S0, T2);
    b.lw(T3, T7, 0);
    b.beqz(T3, cell_next); // empty cell: skip

    b.li(T4, 0); // libs
                 // up: r > 0 && board[idx-SIZE] == 0
    {
        let skip = b.label();
        b.beqz(T0, skip);
        b.add(T7, S0, T2);
        b.lw(T5, T7, -(SIZE as i32));
        b.bnez(T5, skip);
        b.addi(T4, T4, 1);
        b.bind(skip);
    }
    // down: r < SIZE-1 && board[idx+SIZE] == 0
    {
        let skip = b.label();
        b.bge(T0, S6, skip);
        b.add(T7, S0, T2);
        b.lw(T5, T7, SIZE as i32);
        b.bnez(T5, skip);
        b.addi(T4, T4, 1);
        b.bind(skip);
    }
    // left: c > 0 && board[idx-1] == 0
    {
        let skip = b.label();
        b.beqz(T1, skip);
        b.add(T7, S0, T2);
        b.lw(T5, T7, -1);
        b.bnez(T5, skip);
        b.addi(T4, T4, 1);
        b.bind(skip);
    }
    // right: c < SIZE-1 && board[idx+1] == 0
    {
        let skip = b.label();
        b.bge(T1, S6, skip);
        b.add(T7, S0, T2);
        b.lw(T5, T7, 1);
        b.bnez(T5, skip);
        b.addi(T4, T4, 1);
        b.bind(skip);
    }
    // score += libs (black) or -= libs (white)
    {
        let white = b.label();
        let scored = b.label();
        b.li(T5, 1);
        b.bne(T3, T5, white);
        b.add(S5, S5, T4);
        b.j(scored);
        b.bind(white);
        b.sub(S5, S5, T4);
        b.bind(scored);
    }
    // diagonal pattern: r > 0 && c > 0 && board[idx-SIZE-1] == v
    {
        let skip = b.label();
        b.beqz(T0, skip);
        b.beqz(T1, skip);
        b.add(T7, S0, T2);
        b.lw(T5, T7, -(SIZE as i32) - 1);
        b.bne(T5, T3, skip);
        b.addi(S5, S5, 2);
        b.bind(skip);
    }

    b.bind(cell_next);
    b.addi(T1, T1, 1);
    b.j(col_top);
    b.bind(col_end);
    b.addi(T0, T0, 1);
    b.j(row_top);
    b.bind(row_end);

    // total += score; mutate 8 cells at (pass*31 + k*121) % CELLS
    b.add(S2, S2, S5);
    b.li(T0, 0); // k
    {
        let m_top = b.label();
        let m_end = b.label();
        b.bind(m_top);
        b.slti(T5, T0, 8);
        b.beqz(T5, m_end);
        b.muli(T5, S3, 89);
        b.add(T5, T5, T0);
        b.remi(T6, T5, CELLS as i32);
        b.add(T7, S0, T6);
        b.lw(T5, T7, 0);
        b.addi(T5, T5, 1);
        b.remi(T5, T5, 3);
        b.sw(T5, T7, 0);
        b.addi(T0, T0, 1);
        b.j(m_top);
        b.bind(m_end);
    }

    b.addi(S3, S3, 1);
    b.j(pass_top);
    b.bind(pass_end);

    b.ori(CHECKSUM_REG, S2, 1);
    b.halt();

    Workload {
        name: "go",
        description: "liberties/pattern board evaluator on a mutating random board (hard branches)",
        program: b.build().expect("go assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 9)] {
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(&board(salt), scale),
                "scale {scale} salt {salt}"
            );
        }
    }

    #[test]
    fn board_is_mixed() {
        let b = board(0);
        assert_eq!(b.len(), 361);
        for v in 0..3u32 {
            assert!(
                b.iter().filter(|&&x| x == v).count() > 50,
                "value {v} too rare"
            );
        }
    }

    #[test]
    fn mutation_decorrelates_passes() {
        // Two consecutive single-pass totals must differ (the board changed).
        let r1 = reference(&board(0), 1);
        let r2 = reference(&board(0), 2);
        assert_ne!(r1, r2);
    }
}
