//! `xlisp` analog: cons-cell lists, recursive traversal, and a mark pass.
//!
//! SPECint95 `xlisp` is a Lisp interpreter: pointer-chasing over cons
//! cells, deep recursion through `call`/`ret`, and garbage-collector mark
//! phases with data-dependent but biased branches. This analog builds cons
//! lists on a heap, sums them with a genuinely recursive function (explicit
//! stack discipline through `SP`), and runs a mark pass that branches on
//! cell contents.

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

const NUM_LISTS: u32 = 16;
const HEAP_CELLS: u32 = 2048;
/// Traversal+mark repetitions per unit of scale.
const REPS_PER_SCALE: u32 = 18;

fn list_len(j: u32) -> u32 {
    20 + (j * 7) % 50
}

fn car_value(j: u32, k: u32, salt: u32) -> u32 {
    // xorshift scramble so the parity (mark) branch is pseudo-random, like
    // real heap contents — (j*31 + k*17) alone alternates parity.
    let mut x = j
        .wrapping_mul(977)
        .wrapping_add(k.wrapping_mul(331))
        .wrapping_add(1)
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9));
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    x % 256
}

/// Reference implementation mirrored by the assembly.
pub fn reference(scale: u32, salt: u32) -> u32 {
    // Build phase: cell 0 is nil; cells are (car, cdr) pairs.
    let mut cars = vec![0u32];
    let mut cdrs = vec![0u32];
    let mut heads = Vec::new();
    for j in 0..NUM_LISTS {
        let mut head = 0u32;
        for k in 0..list_len(j) {
            cars.push(car_value(j, k, salt));
            cdrs.push(head);
            head = (cars.len() - 1) as u32;
        }
        heads.push(head);
    }

    fn rsum(p: u32, cars: &[u32], cdrs: &[u32]) -> u32 {
        if p == 0 {
            0
        } else {
            rsum(cdrs[p as usize], cars, cdrs).wrapping_add(cars[p as usize])
        }
    }

    let mut checksum = 0u32;
    for _ in 0..scale * REPS_PER_SCALE {
        for &h in &heads {
            checksum = checksum.wrapping_add(rsum(h, &cars, &cdrs));
        }
        let odd = cars[1..].iter().filter(|&&c| c & 1 == 1).count() as u32;
        checksum = checksum.wrapping_add(odd);
    }
    checksum | 1
}

/// Builds the workload.
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let mut b = ProgramBuilder::new();
    // Heap: 3 words per cell (car, cdr, mark); cell 0 is nil.
    let heap = b.alloc_zeroed(HEAP_CELLS * 3);
    let heads = b.alloc_zeroed(NUM_LISTS);
    let stack = b.alloc_zeroed(4096);

    // S0 = heap, S1 = free cell index, S2 = &heads, S3 = reps done,
    // S4 = reps limit, S5/S6/S7 = loop temps, SP = stack pointer (grows up).
    b.li(S0, heap as i32);
    b.li(S1, 1);
    b.li(S2, heads as i32);
    b.li(SP, stack as i32);
    b.li(CHECKSUM_REG, 0);

    let rsum_fn = b.label();
    let start = b.label();
    b.j(start);

    // ---- rsum(A0 = cell index) -> A1 = sum -------------------------------
    b.bind(rsum_fn);
    {
        let nonnil = b.label();
        b.bnez(A0, nonnil);
        b.li(A1, 0);
        b.ret();
        b.bind(nonnil);
        // push RA, A0
        b.sw(RA, SP, 0);
        b.sw(A0, SP, 1);
        b.addi(SP, SP, 2);
        // A0 = cdr(A0) = heap[A0*3 + 1]
        b.muli(T7, A0, 3);
        b.add(T7, S0, T7);
        b.lw(A0, T7, 1);
        b.call(rsum_fn);
        // pop A0, RA
        b.addi(SP, SP, -2);
        b.lw(RA, SP, 0);
        b.lw(A0, SP, 1);
        // A1 += car(A0)
        b.muli(T7, A0, 3);
        b.add(T7, S0, T7);
        b.lw(T6, T7, 0);
        b.add(A1, A1, T6);
        b.ret();
    }

    // ---- build phase ------------------------------------------------------
    b.bind(start);
    // for j in 0..NUM_LISTS
    b.li(S5, 0); // j
    let build_j = b.label();
    let build_done = b.label();
    b.bind(build_j);
    b.li(T5, NUM_LISTS as i32);
    b.bge(S5, T5, build_done);
    // len = 20 + (j*7) % 50
    b.muli(T0, S5, 7);
    b.remi(T0, T0, 50);
    b.addi(T0, T0, 20); // T0 = len
    b.li(T1, 0); // k
    b.li(A2, 0); // head = nil
    let build_k = b.label();
    let build_k_done = b.label();
    b.bind(build_k);
    b.bge(T1, T0, build_k_done);
    // car = xorshift(j*977 + k*331 + 1 + salt*GOLDEN) % 256
    b.muli(T2, S5, 977);
    b.muli(T3, T1, 331);
    b.add(T2, T2, T3);
    b.addi(
        T2,
        T2,
        1i32.wrapping_add((salt.wrapping_mul(0x9E37_79B9)) as i32),
    );
    b.slli(T3, T2, 13);
    b.xor(T2, T2, T3);
    b.srli(T3, T2, 17);
    b.xor(T2, T2, T3);
    b.slli(T3, T2, 5);
    b.xor(T2, T2, T3);
    b.andi(T2, T2, 255);
    // cell = free++; heap[cell*3] = car; heap[cell*3+1] = head; head = cell
    b.muli(T7, S1, 3);
    b.add(T7, S0, T7);
    b.sw(T2, T7, 0);
    b.sw(A2, T7, 1);
    b.mv(A2, S1);
    b.addi(S1, S1, 1);
    b.addi(T1, T1, 1);
    b.j(build_k);
    b.bind(build_k_done);
    // heads[j] = head
    b.add(T7, S2, S5);
    b.sw(A2, T7, 0);
    b.addi(S5, S5, 1);
    b.j(build_j);
    b.bind(build_done);

    // ---- repetition loop: recursive sums + mark pass ----------------------
    b.li(S3, 0);
    b.li(S4, (scale * REPS_PER_SCALE) as i32);
    let rep_top = b.label();
    let rep_end = b.label();
    b.bind(rep_top);
    b.bge(S3, S4, rep_end);

    // sums
    b.li(S5, 0); // j
    let sum_j = b.label();
    let sum_done = b.label();
    b.bind(sum_j);
    b.li(T5, NUM_LISTS as i32);
    b.bge(S5, T5, sum_done);
    b.add(T7, S2, S5);
    b.lw(A0, T7, 0);
    b.call(rsum_fn);
    b.add(CHECKSUM_REG, CHECKSUM_REG, A1);
    b.addi(S5, S5, 1);
    b.j(sum_j);
    b.bind(sum_done);

    // mark pass: odd cars get mark 1, count them
    b.li(S5, 1); // cell index
    b.li(S6, 0); // odd count
    let mark_top = b.label();
    let mark_done = b.label();
    b.bind(mark_top);
    b.bge(S5, S1, mark_done);
    b.muli(T7, S5, 3);
    b.add(T7, S0, T7);
    b.lw(T0, T7, 0);
    b.andi(T0, T0, 1);
    {
        let even = b.label();
        let joined = b.label();
        b.beqz(T0, even);
        b.li(T1, 1);
        b.sw(T1, T7, 2);
        b.addi(S6, S6, 1);
        b.j(joined);
        b.bind(even);
        b.sw(ZERO, T7, 2);
        b.bind(joined);
    }
    b.addi(S5, S5, 1);
    b.j(mark_top);
    b.bind(mark_done);
    b.add(CHECKSUM_REG, CHECKSUM_REG, S6);

    b.addi(S3, S3, 1);
    b.j(rep_top);
    b.bind(rep_end);

    b.ori(CHECKSUM_REG, CHECKSUM_REG, 1);
    b.halt();

    Workload {
        name: "xlisp",
        description: "cons-list building, recursive sums, and a GC-style mark pass",
        program: b.build().expect("xlisp assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 4)] {
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(scale, salt),
                "scale {scale} salt {salt}"
            );
        }
    }

    #[test]
    fn heap_capacity_is_sufficient() {
        let total: u32 = (0..NUM_LISTS).map(list_len).sum();
        assert!(total < HEAP_CELLS, "lists need {total} cells");
    }

    #[test]
    fn lists_have_varied_lengths() {
        let lens: Vec<u32> = (0..NUM_LISTS).map(list_len).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min >= 20 && max < 70 && min != max);
    }
}
