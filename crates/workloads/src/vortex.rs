//! `vortex` analog: a hash-indexed record store under a lookup-heavy mix.
//!
//! SPECint95 `vortex` is an object database; its branch behaviour is
//! dominated by index probes that almost always hit on the first try,
//! making it one of the most predictable programs in the suite. This analog
//! builds an open-addressing hash index over records and runs a query mix
//! of mostly-present keys (first-probe hits) with a sprinkle of absent keys
//! (probe-to-empty).

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

const RECORDS: usize = 512;
const TABLE: u32 = 1024; // power of two; 50 % load factor
const QUERIES: u32 = 1024;
const HOT_KEYS: u32 = 32; // working set of the query mix
/// Query-mix repetitions per unit of scale.
const REPS_PER_SCALE: u32 = 10;

/// Distinct non-zero record keys and their values.
pub fn records(salt: u32) -> (Vec<u32>, Vec<u32>) {
    let raw = crate::xorshift_bytes(
        0x0BEC_7041 ^ salt.wrapping_mul(0x9E37_79B9),
        RECORDS * 4,
        100_000,
    );
    let mut keys: Vec<u32> = Vec::with_capacity(RECORDS);
    let mut seen = std::collections::HashSet::new();
    for r in raw {
        let k = r + 1;
        if seen.insert(k) {
            keys.push(k);
            if keys.len() == RECORDS {
                break;
            }
        }
    }
    assert_eq!(keys.len(), RECORDS, "not enough distinct keys");
    let vals: Vec<u32> = keys
        .iter()
        .map(|k| k.wrapping_mul(2654435761) >> 8)
        .collect();
    (keys, vals)
}

/// Reference implementation mirrored by the assembly.
pub fn reference(keys: &[u32], vals: &[u32], scale: u32) -> u32 {
    let mask = TABLE - 1;
    let mut tkeys = vec![0u32; TABLE as usize];
    let mut tvals = vec![0u32; TABLE as usize];
    for (&k, &v) in keys.iter().zip(vals) {
        let mut h = k & mask;
        while tkeys[h as usize] != 0 {
            h = (h + 1) & mask;
        }
        tkeys[h as usize] = k;
        tvals[h as usize] = v;
    }
    let mut sum = 0u32;
    for _ in 0..scale * REPS_PER_SCALE {
        for q in 0..QUERIES {
            // Mostly a hot working set (first-probe hits, easy branches);
            // one query window in eight is a burst of cold/absent keys
            // (long probes, hard branches) — bursty like a real query log.
            let key = if (q >> 5) & 7 == 7 {
                let base = keys[((q * 13) % RECORDS as u32) as usize];
                if q & 1 == 1 {
                    base + 1_000_000
                } else {
                    base
                }
            } else {
                keys[(q % HOT_KEYS) as usize]
            };
            let mut h = key & mask;
            loop {
                let t = tkeys[h as usize];
                if t == key {
                    sum = sum.wrapping_add(tvals[h as usize]);
                    break;
                }
                if t == 0 {
                    sum = sum.wrapping_add(1);
                    break;
                }
                h = (h + 1) & mask;
            }
        }
    }
    sum | 1
}

/// Builds the workload.
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let (keys, vals) = records(salt);
    let mut b = ProgramBuilder::new();
    let keys_base = b.alloc(&keys);
    let vals_base = b.alloc(&vals);
    let tkeys = b.alloc_zeroed(TABLE);
    let tvals = b.alloc_zeroed(TABLE);

    // S0 = &keys, S1 = &vals, S2 = &tkeys, S3 = &tvals, S4 = mask,
    // S5 = rep, S6 = reps, S7 = sum.
    b.li(S0, keys_base as i32);
    b.li(S1, vals_base as i32);
    b.li(S2, tkeys as i32);
    b.li(S3, tvals as i32);
    b.li(S4, (TABLE - 1) as i32);
    b.li(S7, 0);

    // ---- insert phase ------------------------------------------------------
    b.li(T0, 0); // i
    let ins_top = b.label();
    let ins_end = b.label();
    b.bind(ins_top);
    b.li(T5, RECORDS as i32);
    b.bge(T0, T5, ins_end);
    b.add(T7, S0, T0);
    b.lw(T1, T7, 0); // key
    b.add(T7, S1, T0);
    b.lw(T2, T7, 0); // val
    b.and(T3, T1, S4); // h
    let probe_ins = b.label();
    let slot_found = b.label();
    b.bind(probe_ins);
    b.add(T7, S2, T3);
    b.lw(T4, T7, 0);
    b.beqz(T4, slot_found);
    b.addi(T3, T3, 1);
    b.and(T3, T3, S4);
    b.j(probe_ins);
    b.bind(slot_found);
    b.sw(T1, T7, 0);
    b.add(T7, S3, T3);
    b.sw(T2, T7, 0);
    b.addi(T0, T0, 1);
    b.j(ins_top);
    b.bind(ins_end);

    // ---- query mix ----------------------------------------------------------
    b.li(S5, 0);
    b.li(S6, (scale * REPS_PER_SCALE) as i32);
    let rep_top = b.label();
    let rep_end = b.label();
    b.bind(rep_top);
    b.bge(S5, S6, rep_end);
    b.li(T0, 0); // q
    let q_top = b.label();
    let q_end = b.label();
    b.bind(q_top);
    b.li(T5, QUERIES as i32);
    b.bge(T0, T5, q_end);
    // key selection: cold burst when (q >> 5) & 7 == 7, else hot set.
    {
        let hot = b.label();
        let chosen = b.label();
        b.srli(T5, T0, 5);
        b.andi(T5, T5, 7);
        b.li(T6, 7);
        b.bne(T5, T6, hot);
        // cold: key = keys[(q * 13) % RECORDS], absent when q is odd
        b.muli(T1, T0, 13);
        b.remi(T1, T1, RECORDS as i32);
        b.add(T7, S0, T1);
        b.lw(T1, T7, 0);
        {
            let present = b.label();
            b.andi(T5, T0, 1);
            b.beqz(T5, present);
            b.li(T6, 1_000_000);
            b.add(T1, T1, T6);
            b.bind(present);
        }
        b.j(chosen);
        b.bind(hot);
        b.remi(T1, T0, HOT_KEYS as i32);
        b.add(T7, S0, T1);
        b.lw(T1, T7, 0);
        b.bind(chosen);
    }
    // probe
    b.and(T3, T1, S4);
    let probe = b.label();
    let hit = b.label();
    let miss = b.label();
    let q_next = b.label();
    b.bind(probe);
    b.add(T7, S2, T3);
    b.lw(T4, T7, 0);
    b.beq(T4, T1, hit);
    b.beqz(T4, miss);
    b.addi(T3, T3, 1);
    b.and(T3, T3, S4);
    b.j(probe);
    b.bind(hit);
    b.add(T7, S3, T3);
    b.lw(T4, T7, 0);
    b.add(S7, S7, T4);
    b.j(q_next);
    b.bind(miss);
    b.addi(S7, S7, 1);
    b.bind(q_next);
    b.addi(T0, T0, 1);
    b.j(q_top);
    b.bind(q_end);
    b.addi(S5, S5, 1);
    b.j(rep_top);
    b.bind(rep_end);

    b.ori(CHECKSUM_REG, S7, 1);
    b.halt();

    Workload {
        name: "vortex",
        description: "hash-indexed record store, lookup-heavy query mix (first-probe hits)",
        program: b.build().expect("vortex assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 11)] {
            let (keys, vals) = records(salt);
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(&keys, &vals, scale),
                "scale {scale} salt {salt}"
            );
        }
    }

    #[test]
    fn keys_are_distinct_and_nonzero() {
        let (keys, _) = records(0);
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
        assert!(keys.iter().all(|&k| k != 0));
    }

    #[test]
    fn absent_keys_probe_to_empty() {
        // The absent-key offset must not collide with any real key.
        let (keys, _) = records(0);
        let set: std::collections::HashSet<_> = keys.iter().copied().collect();
        for &k in &keys {
            assert!(!set.contains(&(k + 1_000_000)));
        }
    }
}
