//! `ijpeg` analog: 8×8 block transform, quantization, and zero run-length.
//!
//! SPECint95 `ijpeg` compresses images: fixed-trip-count butterfly loops
//! (perfectly predictable), quantization with biased clamping branches, and
//! a zero-run entropy pre-pass whose branches follow the (mostly-zero)
//! coefficient data. This analog runs the same structure over a
//! pseudo-random image: per pass, each 8×8 block is loaded (with a per-pass
//! bias so passes differ), row/column butterflies are applied, and the
//! coefficients are quantized, clamped, and zero-run coded.

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

const DIM: u32 = 64; // image is DIM × DIM
const BLOCKS_PER_SIDE: u32 = DIM / 8;
/// Image passes per unit of scale.
const PASSES_PER_SCALE: u32 = 3;

/// Pseudo-random 8-bit image.
pub fn image(salt: u32) -> Vec<u32> {
    crate::xorshift_bytes(
        0x1BE6_0D11 ^ salt.wrapping_mul(0x9E37_79B9),
        (DIM * DIM) as usize,
        256,
    )
}

/// Quantization table: gently increasing divisors.
pub fn quant() -> Vec<u32> {
    (0..64).map(|i| 1 + (i % 8) + i / 8).collect()
}

/// Reference implementation mirrored by the assembly.
pub fn reference(image: &[u32], quant: &[u32], scale: u32) -> u32 {
    let mut sum = 0u32;
    for pass in 0..scale * PASSES_PER_SCALE {
        for brow in 0..BLOCKS_PER_SIDE {
            for bcol in 0..BLOCKS_PER_SIDE {
                // load block (+pass bias)
                let mut blk = [0i32; 64];
                for by in 0..8 {
                    for bx in 0..8 {
                        let src = ((brow * 8 + by) * DIM + bcol * 8 + bx) as usize;
                        blk[(by * 8 + bx) as usize] = image[src] as i32 + pass as i32;
                    }
                }
                // row butterflies
                for by in 0..8 {
                    let base = by * 8;
                    for i in 0..4 {
                        let a = blk[base + i];
                        let bb = blk[base + 7 - i];
                        blk[base + i] = a + bb;
                        blk[base + 7 - i] = a - bb;
                    }
                }
                // column butterflies
                for bx in 0..8 {
                    for i in 0..4 {
                        let a = blk[i * 8 + bx];
                        let bb = blk[(7 - i) * 8 + bx];
                        blk[i * 8 + bx] = a + bb;
                        blk[(7 - i) * 8 + bx] = a - bb;
                    }
                }
                // quantize + clamp + zero-RLE
                let mut zrun = 0i32;
                for i in 0..64 {
                    let q = (blk[i] / quant[i] as i32).clamp(-255, 255);
                    if q == 0 {
                        zrun += 1;
                    } else {
                        sum = sum.wrapping_add(q as u32).wrapping_add((zrun * 3) as u32);
                        zrun = 0;
                    }
                }
            }
        }
    }
    sum | 1
}

/// Builds the workload.
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let img = image(salt);
    let qt = quant();
    let mut b = ProgramBuilder::new();
    let img_base = b.alloc(&img);
    let quant_base = b.alloc(&qt);
    let blk = b.alloc_zeroed(64);

    // S0 = &image, S1 = &quant, S2 = &blk, S3 = pass, S4 = passes,
    // S5 = brow, S6 = bcol, S7 = sum.
    b.li(S0, img_base as i32);
    b.li(S1, quant_base as i32);
    b.li(S2, blk as i32);
    b.li(S3, 0);
    b.li(S4, (scale * PASSES_PER_SCALE) as i32);
    b.li(S7, 0);

    let pass_top = b.label();
    let pass_end = b.label();
    b.bind(pass_top);
    b.bge(S3, S4, pass_end);
    b.li(S5, 0); // brow
    let brow_top = b.label();
    let brow_end = b.label();
    b.bind(brow_top);
    b.li(T5, BLOCKS_PER_SIDE as i32);
    b.bge(S5, T5, brow_end);
    b.li(S6, 0); // bcol
    let bcol_top = b.label();
    let bcol_end = b.label();
    b.bind(bcol_top);
    b.li(T5, BLOCKS_PER_SIDE as i32);
    b.bge(S6, T5, bcol_end);

    // ---- load block with per-pass bias ----
    // for by in 0..8 { for bx in 0..8 { blk[by*8+bx] = img[(brow*8+by)*64 + bcol*8+bx] + pass } }
    b.li(T0, 0); // by
    {
        let by_top = b.label();
        let by_end = b.label();
        b.bind(by_top);
        b.slti(T5, T0, 8);
        b.beqz(T5, by_end);
        // A0 = (brow*8 + by) * 64 + bcol*8
        b.muli(A0, S5, 8);
        b.add(A0, A0, T0);
        b.muli(A0, A0, DIM as i32);
        b.muli(T6, S6, 8);
        b.add(A0, A0, T6);
        b.add(A0, S0, A0);
        // A1 = &blk[by*8]
        b.muli(A1, T0, 8);
        b.add(A1, S2, A1);
        b.li(T1, 0); // bx
        let bx_top = b.label();
        let bx_end = b.label();
        b.bind(bx_top);
        b.slti(T5, T1, 8);
        b.beqz(T5, bx_end);
        b.add(T7, A0, T1);
        b.lw(T2, T7, 0);
        b.add(T2, T2, S3);
        b.add(T7, A1, T1);
        b.sw(T2, T7, 0);
        b.addi(T1, T1, 1);
        b.j(bx_top);
        b.bind(bx_end);
        b.addi(T0, T0, 1);
        b.j(by_top);
        b.bind(by_end);
    }

    // ---- row butterflies ----
    b.li(T0, 0); // by
    {
        let by_top = b.label();
        let by_end = b.label();
        b.bind(by_top);
        b.slti(T5, T0, 8);
        b.beqz(T5, by_end);
        b.muli(A0, T0, 8);
        b.add(A0, S2, A0); // &blk[base]
        b.li(T1, 0); // i
        let i_top = b.label();
        let i_end = b.label();
        b.bind(i_top);
        b.slti(T5, T1, 4);
        b.beqz(T5, i_end);
        b.add(T7, A0, T1);
        b.lw(T2, T7, 0); // a
        b.li(T6, 7);
        b.sub(T6, T6, T1);
        b.add(A1, A0, T6);
        b.lw(T3, A1, 0); // b
        b.add(T4, T2, T3);
        b.sw(T4, T7, 0);
        b.sub(T4, T2, T3);
        b.sw(T4, A1, 0);
        b.addi(T1, T1, 1);
        b.j(i_top);
        b.bind(i_end);
        b.addi(T0, T0, 1);
        b.j(by_top);
        b.bind(by_end);
    }

    // ---- column butterflies ----
    b.li(T0, 0); // bx
    {
        let bx_top = b.label();
        let bx_end = b.label();
        b.bind(bx_top);
        b.slti(T5, T0, 8);
        b.beqz(T5, bx_end);
        b.li(T1, 0); // i
        let i_top = b.label();
        let i_end = b.label();
        b.bind(i_top);
        b.slti(T5, T1, 4);
        b.beqz(T5, i_end);
        // &blk[i*8+bx], &blk[(7-i)*8+bx]
        b.muli(T6, T1, 8);
        b.add(T6, T6, T0);
        b.add(T7, S2, T6);
        b.lw(T2, T7, 0); // a
        b.li(T6, 7);
        b.sub(T6, T6, T1);
        b.muli(T6, T6, 8);
        b.add(T6, T6, T0);
        b.add(A1, S2, T6);
        b.lw(T3, A1, 0); // b
        b.add(T4, T2, T3);
        b.sw(T4, T7, 0);
        b.sub(T4, T2, T3);
        b.sw(T4, A1, 0);
        b.addi(T1, T1, 1);
        b.j(i_top);
        b.bind(i_end);
        b.addi(T0, T0, 1);
        b.j(bx_top);
        b.bind(bx_end);
    }

    // ---- quantize + clamp + zero-RLE ----
    b.li(T0, 0); // i
    b.li(A2, 0); // zrun
    {
        let i_top = b.label();
        let i_end = b.label();
        b.bind(i_top);
        b.li(T5, 64);
        b.bge(T0, T5, i_end);
        b.add(T7, S2, T0);
        b.lw(T1, T7, 0); // v
        b.add(T7, S1, T0);
        b.lw(T2, T7, 0); // quant divisor
        b.div(T1, T1, T2); // q
                           // clamp to [-255, 255]
        {
            let no_hi = b.label();
            let no_lo = b.label();
            b.li(T5, 255);
            b.ble(T1, T5, no_hi);
            b.li(T1, 255);
            b.bind(no_hi);
            b.li(T5, -255);
            b.bge(T1, T5, no_lo);
            b.li(T1, -255);
            b.bind(no_lo);
        }
        // RLE
        {
            let nonzero = b.label();
            let next = b.label();
            b.bnez(T1, nonzero);
            b.addi(A2, A2, 1);
            b.j(next);
            b.bind(nonzero);
            b.add(S7, S7, T1);
            b.muli(T5, A2, 3);
            b.add(S7, S7, T5);
            b.li(A2, 0);
            b.bind(next);
        }
        b.addi(T0, T0, 1);
        b.j(i_top);
        b.bind(i_end);
    }

    b.addi(S6, S6, 1);
    b.j(bcol_top);
    b.bind(bcol_end);
    b.addi(S5, S5, 1);
    b.j(brow_top);
    b.bind(brow_end);
    b.addi(S3, S3, 1);
    b.j(pass_top);
    b.bind(pass_end);

    b.ori(CHECKSUM_REG, S7, 1);
    b.halt();

    Workload {
        name: "ijpeg",
        description: "8x8 block butterflies, quantize with clamping, zero run-length coding",
        program: b.build().expect("ijpeg assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 13)] {
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(&image(salt), &quant(), scale),
                "scale {scale} salt {salt}"
            );
        }
    }

    #[test]
    fn quantization_produces_zero_runs() {
        // The RLE branch profile depends on a healthy mix of zero and
        // non-zero coefficients; verify on the reference path.
        let img = image(0);
        let qt = quant();
        let mut zeros = 0usize;
        let mut nonzeros = 0usize;
        let mut blk = [0i32; 64];
        for (i, b) in blk.iter_mut().enumerate() {
            *b = img[i] as i32;
        }
        // emulate one row butterfly + quantize
        for by in 0..8 {
            for i in 0..4 {
                let (a, b2) = (blk[by * 8 + i], blk[by * 8 + 7 - i]);
                blk[by * 8 + i] = a + b2;
                blk[by * 8 + 7 - i] = a - b2;
            }
        }
        for i in 0..64 {
            if blk[i] / qt[i] as i32 == 0 {
                zeros += 1;
            } else {
                nonzeros += 1;
            }
        }
        assert!(zeros > 0 && nonzeros > 0);
    }

    #[test]
    fn quant_divisors_are_positive() {
        assert!(quant().iter().all(|&q| q >= 1));
    }
}
