//! `compress` analog: run-length + dictionary coder over skewed bytes.
//!
//! SPECint95 `compress` is an LZW coder; its branch profile is dominated by
//! data-dependent match/no-match and run-length decisions over a byte
//! stream. This analog reproduces that shape: scan the input, greedily
//! extend runs (inner `while` with a data-dependent trip count), emit
//! run-codes for runs of 3+, otherwise probe a 256-entry hash dictionary
//! (hit/miss branch) and update it.

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

const INPUT_LEN: usize = 4096;
const MAX_RUN: i32 = 64;

/// Generates segmented input: alternating compressible and incompressible
/// regions, like real files (headers, text, then binary blobs).
///
/// The segmentation matters beyond realism: hard-to-compress segments are
/// also hard to *predict*, producing the bursty mispredictions ("branch
/// misprediction clustering") that the paper's §4 measures.
pub fn input(salt: u32) -> Vec<u32> {
    const SEG: usize = 128;
    let raw = crate::xorshift_bytes(
        0xC04F_FEE1 ^ salt.wrapping_mul(0x9E37_79B9),
        INPUT_LEN,
        u32::MAX,
    );
    let mut data = vec![0u32; INPUT_LEN];
    for seg in 0..INPUT_LEN / SEG {
        // Half short-run segments (runs of 2–9 straddle the run>=3 emit
        // threshold, so the run-length branches are genuinely data-
        // dependent), a quarter text, a quarter incompressible blob —
        // landing near the paper's ~90 % gshare accuracy for compress.
        let kind = (raw[seg * SEG] >> 7) % 4;
        let base = seg * SEG;
        match kind {
            // Short-run segments: run lengths 1..=5 straddle the emit
            // threshold, making the run branches hard.
            0 | 1 => {
                let mut i = 0;
                while i < SEG {
                    let v = 1 + raw[base + i] % 23;
                    let run = 1 + (raw[base + i] >> 9) as usize % 5;
                    for j in i..(i + run).min(SEG) {
                        data[base + j] = v;
                    }
                    i += run;
                }
            }
            // Text-like segment: small alphabet, short accidental runs.
            2 => {
                for i in 0..SEG {
                    data[base + i] = 1 + raw[base + i] % 16;
                }
            }
            // Binary blob: full-range bytes (hard branches).
            _ => {
                for i in 0..SEG {
                    data[base + i] = 1 + raw[base + i] % 255;
                }
            }
        }
    }
    data
}

/// Reference implementation mirrored by the assembly, used by the tests.
pub fn reference(data: &[u32], scale: u32) -> u32 {
    let mut dict = [0u32; 256];
    let mut sum = 0u32;
    for _ in 0..scale {
        let mut i = 0usize;
        while i < data.len() {
            let c = data[i];
            let mut run = 1usize;
            while i + run < data.len() && data[i + run] == c && (run as i32) < MAX_RUN {
                run += 1;
            }
            if run >= 3 {
                sum = sum
                    .wrapping_add(c.wrapping_mul(run as u32))
                    .wrapping_add(257);
                i += run;
            } else {
                let nxt = if i + 1 < data.len() {
                    data[i + 1]
                } else {
                    data[0]
                };
                let h = (c.wrapping_mul(31).wrapping_add(nxt) & 255) as usize;
                if dict[h] == c {
                    sum = sum.wrapping_add(1);
                } else {
                    dict[h] = c;
                    sum = sum.wrapping_add(c);
                }
                i += 1;
            }
        }
    }
    sum
}

/// Builds the workload at the given scale (passes over the input).
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let data = input(salt);
    let mut b = ProgramBuilder::new();
    let data_base = b.alloc(&data);
    let dict_base = b.alloc_zeroed(256);

    // S0 = &data, S1 = n, S2 = &dict, S3 = pass, S4 = scale.
    b.li(S0, data_base as i32);
    b.li(S1, data.len() as i32);
    b.li(S2, dict_base as i32);
    b.li(S3, 0);
    b.li(S4, scale as i32);
    b.li(CHECKSUM_REG, 0);

    let pass_top = b.label();
    let pass_end = b.label();
    b.bind(pass_top);
    b.bge(S3, S4, pass_end);

    // T0 = i
    b.li(T0, 0);
    let scan_top = b.label();
    let scan_end = b.label();
    b.bind(scan_top);
    b.bge(T0, S1, scan_end);

    // T1 = c = data[i]
    b.add(T7, S0, T0);
    b.lw(T1, T7, 0);
    // T2 = run = 1
    b.li(T2, 1);
    let run_top = b.label();
    let run_done = b.label();
    b.bind(run_top);
    // T3 = i + run; bounds check.
    b.add(T3, T0, T2);
    b.bge(T3, S1, run_done);
    // data[i + run] == c?
    b.add(T7, S0, T3);
    b.lw(T4, T7, 0);
    b.bne(T4, T1, run_done);
    b.addi(T2, T2, 1);
    b.slti(T5, T2, MAX_RUN);
    b.bnez(T5, run_top);
    b.bind(run_done);

    // run >= 3 → run-code path.
    let literal = b.label();
    let advance = b.label();
    b.slti(T5, T2, 3);
    b.bnez(T5, literal);
    // checksum += c * run + 257; i += run.
    b.mul(T6, T1, T2);
    b.add(CHECKSUM_REG, CHECKSUM_REG, T6);
    b.addi(CHECKSUM_REG, CHECKSUM_REG, 257);
    b.add(T0, T0, T2);
    b.j(advance);

    b.bind(literal);
    // nxt = (i + 1 < n) ? data[i + 1] : data[0]
    let have_nxt = b.label();
    b.addi(T3, T0, 1);
    b.lw(T6, S0, 0); // speculative default data[0]
    b.bge(T3, S1, have_nxt);
    b.add(T7, S0, T3);
    b.lw(T6, T7, 0);
    b.bind(have_nxt);
    // h = (c * 31 + nxt) & 255
    b.muli(T4, T1, 31);
    b.add(T4, T4, T6);
    b.andi(T4, T4, 255);
    // dict probe
    let miss = b.label();
    let probed = b.label();
    b.add(T7, S2, T4);
    b.lw(T5, T7, 0);
    b.bne(T5, T1, miss);
    b.addi(CHECKSUM_REG, CHECKSUM_REG, 1);
    b.j(probed);
    b.bind(miss);
    b.sw(T1, T7, 0);
    b.add(CHECKSUM_REG, CHECKSUM_REG, T1);
    b.bind(probed);
    b.addi(T0, T0, 1);

    b.bind(advance);
    b.j(scan_top);
    b.bind(scan_end);

    b.addi(S3, S3, 1);
    b.j(pass_top);
    b.bind(pass_end);
    b.halt();

    Workload {
        name: "compress",
        description: "run-length + dictionary coder over skewed bytes (LZW-style branch profile)",
        program: b.build().expect("compress assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 7)] {
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(&input(salt), scale),
                "scale {scale} salt {salt}"
            );
        }
        // Different salts are genuinely different inputs.
        assert_ne!(input(0), input(1));
    }

    #[test]
    fn input_contains_runs_and_no_zeros() {
        let d = input(0);
        assert_eq!(d.len(), INPUT_LEN);
        assert!(d.iter().all(|&v| (1..=255).contains(&v)));
        let runs = d
            .windows(3)
            .filter(|w| w[0] == w[1] && w[1] == w[2])
            .count();
        assert!(runs > 100, "expected plenty of runs, got {runs}");
    }
}
