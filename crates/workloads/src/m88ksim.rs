//! `m88ksim` analog: a fetch/decode/execute emulator main loop.
//!
//! SPECint95 `m88ksim` emulates an MC88100; its branch behaviour is
//! dominated by the emulator's dispatch loop re-executing the same guest
//! code, which makes it one of the most predictable programs in the suite.
//! This analog emulates a tiny 8-register guest CPU running a short guest
//! loop: the host-level branches (opcode dispatch tree, guest-branch test)
//! repeat with strong patterns, exactly the profile of the original.

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

/// Guest steps per unit of scale.
const STEPS_PER_SCALE: u32 = 12_000;
const GMEM_WORDS: u32 = 64;

/// Guest instruction encoding: `op<<12 | rd<<9 | rs<<6 | imm` with
/// `op < 8`, `rd, rs < 8`, `imm < 64`.
fn enc(op: u32, rd: u32, rs: u32, imm: u32) -> u32 {
    assert!(op < 8 && rd < 8 && rs < 8 && imm < 64);
    (op << 12) | (rd << 9) | (rs << 6) | imm
}

/// The guest program: a short loop with two conditional guest branches.
pub fn guest_program() -> Vec<u32> {
    vec![
        enc(0, 0, 0, 1), // addi r0, 1
        enc(1, 1, 0, 0), // add  r1, r0
        enc(4, 3, 1, 0), // load r3, gmem[r1 & 63]
        enc(2, 2, 1, 0), // xor  r2, r1
        enc(5, 2, 0, 0), // store gmem[r0 & 63] = r2
        enc(0, 4, 0, 5), // addi r4, 5
        enc(3, 1, 0, 1), // shr  r1, 1
        enc(1, 5, 2, 0), // add  r5, r2
        enc(6, 0, 0, 3), // branch to 0 if r0 & 3 != 0 (75% taken)
        enc(0, 6, 0, 1), // addi r6, 1
        enc(6, 6, 0, 1), // branch to 0 if r6 & 1 != 0 (alternating)
        enc(0, 7, 0, 9), // addi r7, 9 (falls off the end; gpc wraps)
    ]
}

/// Initial guest-memory image: a few salted words the guest loads mix in.
pub fn gmem_init(salt: u32) -> Vec<u32> {
    let mut words = vec![0u32; GMEM_WORDS as usize];
    let rnd = crate::xorshift_bytes(0x88D0_0D1E ^ salt.wrapping_mul(0x9E37_79B9), 8, 1 << 16);
    words[..8].copy_from_slice(&rnd);
    words
}

/// Reference emulator mirrored by the assembly.
pub fn reference(gprog: &[u32], scale: u32, salt: u32) -> u32 {
    let mut regs = [0u32; 8];
    let mut gmem = [0u32; GMEM_WORDS as usize];
    gmem.copy_from_slice(&gmem_init(salt));
    let mut gpc = 0usize;
    let steps = scale * STEPS_PER_SCALE;
    for _ in 0..steps {
        let inst = gprog[gpc];
        let op = (inst >> 12) & 7;
        let rd = ((inst >> 9) & 7) as usize;
        let rs = ((inst >> 6) & 7) as usize;
        let imm = inst & 63;
        let mut next = gpc + 1;
        match op {
            0 => regs[rd] = regs[rd].wrapping_add(imm),
            1 => regs[rd] = regs[rd].wrapping_add(regs[rs]),
            2 => regs[rd] ^= regs[rs],
            3 => regs[rd] >>= imm & 31,
            4 => {
                let a = (regs[rs] & (GMEM_WORDS - 1)) as usize;
                regs[rd] = regs[rd].wrapping_add(gmem[a]);
            }
            5 => {
                let a = (regs[rs] & (GMEM_WORDS - 1)) as usize;
                gmem[a] = regs[rd];
            }
            _ => {
                if regs[rd] & imm != 0 {
                    next = 0;
                }
            }
        }
        gpc = if next >= gprog.len() { 0 } else { next };
    }
    let mut sum = 0u32;
    for r in regs {
        sum = sum.wrapping_add(r);
    }
    for &m in &gmem[..8] {
        sum = sum.wrapping_add(m);
    }
    sum | 1
}

/// Builds the workload.
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let gprog = guest_program();
    let mut b = ProgramBuilder::new();
    let prog_base = b.alloc(&gprog);
    let regs_base = b.alloc_zeroed(8);
    let gmem_base = b.alloc(&gmem_init(salt));

    // S0 = &gprog, S1 = gprog len, S2 = &gregs, S3 = &gmem,
    // S4 = step limit, S5 = step, S6 = gpc.
    b.li(S0, prog_base as i32);
    b.li(S1, gprog.len() as i32);
    b.li(S2, regs_base as i32);
    b.li(S3, gmem_base as i32);
    b.li(S4, (scale * STEPS_PER_SCALE) as i32);
    b.li(S5, 0);
    b.li(S6, 0);

    let loop_top = b.label();
    let loop_end = b.label();
    let advance = b.label(); // gpc = next (T6), wrap, step++
    b.bind(loop_top);
    b.bge(S5, S4, loop_end);
    // fetch
    b.add(T7, S0, S6);
    b.lw(T0, T7, 0);
    // decode: T1 = op, T2 = rd, T3 = rs, T4 = imm
    b.srli(T1, T0, 12);
    b.andi(T1, T1, 7);
    b.srli(T2, T0, 9);
    b.andi(T2, T2, 7);
    b.srli(T3, T0, 6);
    b.andi(T3, T3, 7);
    b.andi(T4, T0, 63);
    // default next = gpc + 1
    b.addi(T6, S6, 1);

    // dispatch tree
    let ops: Vec<_> = (0..7).map(|_| b.label()).collect();
    for (v, &l) in ops.iter().enumerate().take(6) {
        b.li(T5, v as i32);
        b.beq(T1, T5, l);
    }
    b.j(ops[6]);

    // op0: addi — gregs[rd] += imm
    b.bind(ops[0]);
    b.add(T7, S2, T2);
    b.lw(T5, T7, 0);
    b.add(T5, T5, T4);
    b.sw(T5, T7, 0);
    b.j(advance);
    // op1: add — gregs[rd] += gregs[rs]
    b.bind(ops[1]);
    b.add(T7, S2, T3);
    b.lw(T5, T7, 0);
    b.add(T7, S2, T2);
    b.lw(A0, T7, 0);
    b.add(A0, A0, T5);
    b.sw(A0, T7, 0);
    b.j(advance);
    // op2: xor
    b.bind(ops[2]);
    b.add(T7, S2, T3);
    b.lw(T5, T7, 0);
    b.add(T7, S2, T2);
    b.lw(A0, T7, 0);
    b.xor(A0, A0, T5);
    b.sw(A0, T7, 0);
    b.j(advance);
    // op3: shr — gregs[rd] >>= imm & 31
    b.bind(ops[3]);
    b.add(T7, S2, T2);
    b.lw(T5, T7, 0);
    b.andi(A0, T4, 31);
    b.srl(T5, T5, A0);
    b.sw(T5, T7, 0);
    b.j(advance);
    // op4: load — gregs[rd] += gmem[gregs[rs] & 63]
    b.bind(ops[4]);
    b.add(T7, S2, T3);
    b.lw(T5, T7, 0);
    b.andi(T5, T5, (GMEM_WORDS - 1) as i32);
    b.add(T7, S3, T5);
    b.lw(T5, T7, 0);
    b.add(T7, S2, T2);
    b.lw(A0, T7, 0);
    b.add(A0, A0, T5);
    b.sw(A0, T7, 0);
    b.j(advance);
    // op5: store — gmem[gregs[rs] & 63] = gregs[rd]
    b.bind(ops[5]);
    b.add(T7, S2, T3);
    b.lw(T5, T7, 0);
    b.andi(T5, T5, (GMEM_WORDS - 1) as i32);
    b.add(A0, S3, T5);
    b.add(T7, S2, T2);
    b.lw(T5, T7, 0);
    b.sw(T5, A0, 0);
    b.j(advance);
    // op6: guest branch — if gregs[rd] & imm != 0 then next = 0
    b.bind(ops[6]);
    {
        let not_taken = b.label();
        b.add(T7, S2, T2);
        b.lw(T5, T7, 0);
        b.and(T5, T5, T4);
        b.beqz(T5, not_taken);
        b.li(T6, 0);
        b.bind(not_taken);
    }

    b.bind(advance);
    {
        let no_wrap = b.label();
        b.blt(T6, S1, no_wrap);
        b.li(T6, 0);
        b.bind(no_wrap);
    }
    b.mv(S6, T6);
    b.addi(S5, S5, 1);
    b.j(loop_top);
    b.bind(loop_end);

    // checksum = sum(gregs) + sum(gmem[..8]), made odd
    b.li(CHECKSUM_REG, 0);
    b.li(T0, 0);
    {
        let top = b.label();
        let end = b.label();
        b.bind(top);
        b.slti(T5, T0, 8);
        b.beqz(T5, end);
        b.add(T7, S2, T0);
        b.lw(T5, T7, 0);
        b.add(CHECKSUM_REG, CHECKSUM_REG, T5);
        b.add(T7, S3, T0);
        b.lw(T5, T7, 0);
        b.add(CHECKSUM_REG, CHECKSUM_REG, T5);
        b.addi(T0, T0, 1);
        b.j(top);
        b.bind(end);
    }
    b.ori(CHECKSUM_REG, CHECKSUM_REG, 1);
    b.halt();

    Workload {
        name: "m88ksim",
        description: "guest-CPU emulator dispatch loop (highly repetitive, very predictable)",
        program: b.build().expect("m88ksim assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 6)] {
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(&guest_program(), scale, salt),
                "scale {scale} salt {salt}"
            );
        }
    }

    #[test]
    fn guest_branches_fire_both_ways() {
        // Run the reference with instrumented branch outcomes.
        let gprog = guest_program();
        let mut regs = [0u32; 8];
        let (mut taken, mut not_taken) = (0, 0);
        let mut gpc = 0usize;
        for _ in 0..10_000 {
            let inst = gprog[gpc];
            let op = (inst >> 12) & 7;
            let rd = ((inst >> 9) & 7) as usize;
            let imm = inst & 63;
            let mut next = gpc + 1;
            match op {
                0 => regs[rd] = regs[rd].wrapping_add(imm),
                6 => {
                    if regs[rd] & imm != 0 {
                        next = 0;
                        taken += 1;
                    } else {
                        not_taken += 1;
                    }
                }
                _ => {}
            }
            gpc = if next >= gprog.len() { 0 } else { next };
        }
        assert!(taken > 100, "taken {taken}");
        assert!(not_taken > 100, "not taken {not_taken}");
    }

    #[test]
    fn encoding_round_trips() {
        let i = enc(6, 3, 5, 42);
        assert_eq!((i >> 12) & 7, 6);
        assert_eq!((i >> 9) & 7, 3);
        assert_eq!((i >> 6) & 7, 5);
        assert_eq!(i & 63, 42);
    }
}
