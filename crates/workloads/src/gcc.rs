//! `gcc` analog: tokenizer + parser state machine over pseudo-source text.
//!
//! SPECint95 `gcc` (cc1) spends its time in scanning, parsing and
//! tree-walking code with very many static branch sites and deep if/else
//! chains. This analog lexes a pseudo-source character stream through a
//! character-class branch tree and a three-state tokenizer, tracking brace
//! depth like a parser would.

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

const INPUT_LEN: usize = 8192;

/// Pseudo-source text: ASCII codes shaped roughly like C source
/// (identifiers, numbers, whitespace, punctuation including braces).
pub fn input(salt: u32) -> Vec<u32> {
    let raw = crate::xorshift_bytes(0x6CC1_57A7 ^ salt.wrapping_mul(0x9E37_79B9), INPUT_LEN, 100);
    raw.iter()
        .map(|&r| match r {
            0..=39 => 97 + (r % 26),  // lowercase letters
            40..=49 => 65 + (r % 26), // uppercase letters
            50..=69 => 48 + (r % 10), // digits
            70..=89 => match r % 3 {
                0 => 32, // space
                1 => 10, // newline
                _ => 9,  // tab
            },
            90..=94 => 123, // '{'
            95..=99 => 125, // '}'
            _ => unreachable!(),
        })
        .collect()
}

fn is_alpha(c: u32) -> bool {
    (65..=90).contains(&c) || (97..=122).contains(&c)
}

fn is_digit(c: u32) -> bool {
    (48..=57).contains(&c)
}

fn is_space(c: u32) -> bool {
    c == 32 || c == 10 || c == 9
}

/// Reference implementation mirrored by the assembly.
pub fn reference(text: &[u32], scale: u32) -> u32 {
    let (mut idents, mut numbers, mut puncts) = (0u32, 0u32, 0u32);
    let mut depth = 0i32;
    let mut max_depth = 0i32;
    for _ in 0..scale {
        let mut state = 0u32; // 0 start, 1 ident, 2 number
        for &c in text {
            match state {
                0 => {
                    if is_alpha(c) {
                        state = 1;
                        idents = idents.wrapping_add(1);
                    } else if is_digit(c) {
                        state = 2;
                        numbers = numbers.wrapping_add(1);
                    } else if is_space(c) {
                        // skip
                    } else {
                        puncts = puncts.wrapping_add(1);
                        if c == 123 {
                            depth += 1;
                            if depth > max_depth {
                                max_depth = depth;
                            }
                        } else if c == 125 {
                            depth -= 1;
                        }
                    }
                }
                1 => {
                    if !(is_alpha(c) || is_digit(c)) {
                        state = 0;
                        if is_space(c) {
                            // token ends cleanly
                        } else {
                            puncts = puncts.wrapping_add(1);
                            if c == 123 {
                                depth += 1;
                                if depth > max_depth {
                                    max_depth = depth;
                                }
                            } else if c == 125 {
                                depth -= 1;
                            }
                        }
                    }
                }
                _ => {
                    if !is_digit(c) {
                        state = 0;
                        if is_alpha(c) {
                            state = 1;
                            idents = idents.wrapping_add(1);
                        } else if is_space(c) {
                            // skip
                        } else {
                            puncts = puncts.wrapping_add(1);
                            if c == 123 {
                                depth += 1;
                                if depth > max_depth {
                                    max_depth = depth;
                                }
                            } else if c == 125 {
                                depth -= 1;
                            }
                        }
                    }
                }
            }
        }
    }
    idents
        .wrapping_mul(3)
        .wrapping_add(numbers.wrapping_mul(5))
        .wrapping_add(puncts.wrapping_mul(7))
        .wrapping_add(max_depth as u32)
}

/// Builds the workload: the tokenizer as assembly.
///
/// The punctuation handling is factored into a `punct` subroutine (call/ret)
/// so the workload also exercises call-linkage like real parser code.
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let text = input(salt);
    let mut b = ProgramBuilder::new();
    let base = b.alloc(&text);

    // S0 = &text, S1 = n, S2 = idents, S3 = numbers, S4 = puncts,
    // S5 = depth, S6 = max_depth, S7 = state, A0 = pass, A1 = scale,
    // T0 = index, T1 = c.
    b.li(S0, base as i32);
    b.li(S1, text.len() as i32);
    b.li(S2, 0);
    b.li(S3, 0);
    b.li(S4, 0);
    b.li(S5, 0);
    b.li(S6, 0);
    b.li(A0, 0);
    b.li(A1, scale as i32);

    let punct_fn = b.label();
    let pass_top = b.label();
    let pass_end = b.label();
    let done = b.label();

    b.j(pass_top);

    // ---- punct(c in T1): puncts++, track brace depth --------------------
    b.bind(punct_fn);
    {
        let not_open = b.label();
        let not_close = b.label();
        let out = b.label();
        b.addi(S4, S4, 1);
        b.li(T5, 123);
        b.bne(T1, T5, not_open);
        b.addi(S5, S5, 1);
        b.ble(S5, S6, out);
        b.mv(S6, S5);
        b.j(out);
        b.bind(not_open);
        b.li(T5, 125);
        b.bne(T1, T5, not_close);
        b.addi(S5, S5, -1);
        b.bind(not_close);
        b.bind(out);
        b.ret();
    }

    // ---- classify(c in T1) -> T2 (0 alpha, 1 digit, 2 space, 3 punct) ---
    // Inlined as a branch tree at each use via this subroutine.
    let classify_fn = b.label();
    b.bind(classify_fn);
    {
        let not_lower = b.label();
        let not_upper = b.label();
        let not_digit = b.label();
        let not_sp = b.label();
        let not_nl = b.label();
        let alpha = b.label();
        let out = b.label();
        // lowercase?
        b.slti(T5, T1, 97);
        b.bnez(T5, not_lower);
        b.slti(T5, T1, 123);
        b.bnez(T5, alpha);
        b.bind(not_lower);
        // uppercase?
        b.slti(T5, T1, 65);
        b.bnez(T5, not_upper);
        b.slti(T5, T1, 91);
        b.bnez(T5, alpha);
        b.bind(not_upper);
        // digit?
        b.slti(T5, T1, 48);
        b.bnez(T5, not_digit);
        b.slti(T5, T1, 58);
        b.beqz(T5, not_digit);
        b.li(T2, 1);
        b.j(out);
        b.bind(not_digit);
        // space / newline / tab?
        b.li(T5, 32);
        b.bne(T1, T5, not_sp);
        b.li(T2, 2);
        b.j(out);
        b.bind(not_sp);
        b.li(T5, 10);
        b.bne(T1, T5, not_nl);
        b.li(T2, 2);
        b.j(out);
        b.bind(not_nl);
        let punct = b.label();
        b.li(T5, 9);
        b.bne(T1, T5, punct);
        b.li(T2, 2);
        b.j(out);
        b.bind(punct);
        b.li(T2, 3);
        b.j(out);
        b.bind(alpha);
        b.li(T2, 0);
        b.bind(out);
        b.ret();
    }

    // ---- main ------------------------------------------------------------
    b.bind(pass_top);
    b.bge(A0, A1, pass_end);
    b.li(S7, 0); // state = start
    b.li(T0, 0);
    let char_top = b.label();
    let char_next = b.label();
    let char_end = b.label();
    b.bind(char_top);
    b.bge(T0, S1, char_end);
    b.add(T7, S0, T0);
    b.lw(T1, T7, 0);
    // T2 = classify(c). The classifier clobbers T5 only.
    // NOTE: `call` clobbers RA; the tokenizer keeps no state in RA.
    b.call(classify_fn);

    let st_ident = b.label();
    let st_number = b.label();
    // state dispatch
    b.li(T5, 1);
    b.beq(S7, T5, st_ident);
    b.li(T5, 2);
    b.beq(S7, T5, st_number);

    // state 0: start
    {
        let not_alpha = b.label();
        let not_digit = b.label();
        let not_space = b.label();
        b.bnez(T2, not_alpha);
        b.li(S7, 1);
        b.addi(S2, S2, 1);
        b.j(char_next);
        b.bind(not_alpha);
        b.li(T5, 1);
        b.bne(T2, T5, not_digit);
        b.li(S7, 2);
        b.addi(S3, S3, 1);
        b.j(char_next);
        b.bind(not_digit);
        b.li(T5, 2);
        b.bne(T2, T5, not_space);
        b.j(char_next);
        b.bind(not_space);
        b.call(punct_fn);
        b.j(char_next);
    }

    // state 1: identifier
    b.bind(st_ident);
    {
        let end_tok = b.label();
        // alpha or digit continues the identifier
        b.slti(T5, T2, 2);
        b.beqz(T5, end_tok);
        b.j(char_next);
        b.bind(end_tok);
        b.li(S7, 0);
        let is_punct = b.label();
        b.li(T5, 2);
        b.bne(T2, T5, is_punct);
        b.j(char_next); // space ends token cleanly
        b.bind(is_punct);
        b.call(punct_fn);
        b.j(char_next);
    }

    // state 2: number
    b.bind(st_number);
    {
        let end_num = b.label();
        b.li(T5, 1);
        b.bne(T2, T5, end_num);
        b.j(char_next); // still a digit
        b.bind(end_num);
        b.li(S7, 0);
        let not_alpha = b.label();
        let not_space = b.label();
        b.bnez(T2, not_alpha);
        b.li(S7, 1);
        b.addi(S2, S2, 1);
        b.j(char_next);
        b.bind(not_alpha);
        b.li(T5, 2);
        b.bne(T2, T5, not_space);
        b.j(char_next);
        b.bind(not_space);
        b.call(punct_fn);
        b.j(char_next);
    }

    b.bind(char_next);
    b.addi(T0, T0, 1);
    b.j(char_top);
    b.bind(char_end);
    b.addi(A0, A0, 1);
    b.j(pass_top);

    b.bind(pass_end);
    // checksum = idents*3 + numbers*5 + puncts*7 + max_depth
    b.muli(T1, S2, 3);
    b.muli(T2, S3, 5);
    b.muli(T3, S4, 7);
    b.add(CHECKSUM_REG, T1, T2);
    b.add(CHECKSUM_REG, CHECKSUM_REG, T3);
    b.add(CHECKSUM_REG, CHECKSUM_REG, S6);
    b.j(done);
    b.bind(done);
    b.halt();

    Workload {
        name: "gcc",
        description: "tokenizer + parser state machine over pseudo-source (branch-tree heavy)",
        program: b.build().expect("gcc assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 3)] {
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(&input(salt), scale),
                "scale {scale} salt {salt}"
            );
        }
    }

    #[test]
    fn input_covers_all_character_classes() {
        let t = input(0);
        assert!(t.iter().any(|&c| is_alpha(c)));
        assert!(t.iter().any(|&c| is_digit(c)));
        assert!(t.iter().any(|&c| is_space(c)));
        assert!(t.contains(&123));
        assert!(t.contains(&125));
    }

    #[test]
    fn reference_counts_are_sane() {
        // A hand-built snippet: "ab 12{x}"
        let text: Vec<u32> = "ab 12{x}".chars().map(|c| c as u32).collect();
        // idents: "ab", "x" = 2; numbers: "12" = 1; puncts: '{','}' = 2;
        // max_depth = 1.
        assert_eq!(reference(&text, 1), 2 * 3 + 5 + 2 * 7 + 1);
    }
}
