//! `perl` analog: multi-pattern text matching plus opcode dispatch.
//!
//! SPECint95 `perl` interleaves regex-style text scanning (inner compare
//! loops with data-dependent exits) with interpreter opcode dispatch (a
//! dense indirect switch, here a branch tree). Both components appear in
//! this analog: a naive multi-pattern matcher over a small-alphabet text,
//! then an 8-way "bytecode" dispatch loop over the same text.

use crate::{Workload, CHECKSUM_REG};
use cestim_isa::ProgramBuilder;

const TEXT_LEN: usize = 4096;
const ALPHABET: u32 = 8;

/// Text over a small alphabet so that pattern prefixes match often.
///
/// Segmented into repetitive (motif-cycling, easy) and random (hard)
/// regions so mispredictions arrive in bursts, as with real text.
pub fn text(salt: u32) -> Vec<u32> {
    const SEG: usize = 256;
    let raw = crate::xorshift_bytes(
        0x9E81_AB12 ^ salt.wrapping_mul(0x9E37_79B9),
        TEXT_LEN,
        u32::MAX,
    );
    let motif = [1u32, 2, 3, 0, 5, 4, 2, 1, 2, 3, 7, 0];
    let mut out = vec![0u32; TEXT_LEN];
    for seg in 0..TEXT_LEN / SEG {
        let base = seg * SEG;
        if (raw[base] >> 6).is_multiple_of(3) {
            // Hard segment: uniform random symbols.
            for i in 0..SEG {
                out[base + i] = raw[base + i] % ALPHABET;
            }
        } else {
            // Easy segment: cycle a motif with a per-segment phase.
            let phase = (raw[base] % 12) as usize;
            for i in 0..SEG {
                out[base + i] = motif[(phase + i) % motif.len()];
            }
        }
    }
    out
}

/// The search patterns (small alphabet, mixed lengths).
pub fn patterns() -> Vec<Vec<u32>> {
    vec![
        vec![1, 2, 3],
        vec![0, 0, 7, 1],
        vec![5, 4],
        vec![2, 2, 2, 6, 1],
    ]
}

/// Reference implementation mirrored by the assembly.
pub fn reference(text: &[u32], pats: &[Vec<u32>], scale: u32) -> u32 {
    let mut matches = 0u32;
    let mut possum = 0u32;
    let mut acc = 1u32;
    for _ in 0..scale {
        for pat in pats {
            let len = pat.len();
            if len > text.len() {
                continue;
            }
            for i in 0..=(text.len() - len) {
                let mut j = 0usize;
                while j < len && text[i + j] == pat[j] {
                    j += 1;
                }
                if j == len {
                    matches = matches.wrapping_add(1);
                    possum = possum.wrapping_add(i as u32);
                }
            }
        }
        for (i, &c) in text.iter().enumerate() {
            match c {
                0 => acc = acc.wrapping_add(1),
                1 => acc = acc.wrapping_add(i as u32),
                2 => acc ^= c,
                3 => acc = acc.wrapping_shl(1),
                4 => acc = acc.wrapping_sub(2),
                5 => acc = acc.wrapping_add(acc >> 3),
                6 => acc = acc.wrapping_mul(3),
                _ => {
                    if acc & 1 == 1 {
                        acc = acc.wrapping_add(5);
                    } else {
                        acc = acc.wrapping_add(7);
                    }
                }
            }
        }
    }
    matches
        .wrapping_mul(31)
        .wrapping_add(possum)
        .wrapping_add(acc)
}

/// Builds the workload.
pub fn build(scale: u32, salt: u32) -> Workload {
    use cestim_isa::regs::*;
    let text = text(salt);
    let pats = patterns();
    let mut b = ProgramBuilder::new();
    let text_base = b.alloc(&text);
    let flat: Vec<u32> = pats.iter().flatten().copied().collect();
    let pats_base = b.alloc(&flat);
    let offs: Vec<u32> = pats
        .iter()
        .scan(0u32, |o, p| {
            let cur = *o;
            *o += p.len() as u32;
            Some(cur)
        })
        .collect();
    let offs_base = b.alloc(&offs);
    let lens: Vec<u32> = pats.iter().map(|p| p.len() as u32).collect();
    let lens_base = b.alloc(&lens);

    // S0 = &text, S1 = n, S2 = &pats, S3 = &offs, S4 = &lens,
    // S5 = matches, S6 = possum, S7 = acc, A0 = pass, A1 = scale.
    b.li(S0, text_base as i32);
    b.li(S1, text.len() as i32);
    b.li(S2, pats_base as i32);
    b.li(S3, offs_base as i32);
    b.li(S4, lens_base as i32);
    b.li(S5, 0);
    b.li(S6, 0);
    b.li(S7, 1);
    b.li(A0, 0);
    b.li(A1, scale as i32);

    let pass_top = b.label();
    let pass_end = b.label();
    b.bind(pass_top);
    b.bge(A0, A1, pass_end);

    // ---- matcher ---------------------------------------------------------
    // A2 = pattern index
    b.li(A2, 0);
    let pat_top = b.label();
    let pat_end = b.label();
    b.bind(pat_top);
    b.li(T5, pats.len() as i32);
    b.bge(A2, T5, pat_end);
    // A3 = &pats[off], A4 = len, A5 = n - len (last valid start)
    b.add(T7, S3, A2);
    b.lw(T6, T7, 0);
    b.add(A3, S2, T6);
    b.add(T7, S4, A2);
    b.lw(A4, T7, 0);
    b.sub(A5, S1, A4);
    // T0 = i
    b.li(T0, 0);
    let pos_top = b.label();
    let pos_end = b.label();
    b.bind(pos_top);
    b.bgt(T0, A5, pos_end);
    // inner compare: T1 = j
    b.li(T1, 0);
    let cmp_top = b.label();
    let cmp_fail = b.label();
    let cmp_done = b.label();
    b.bind(cmp_top);
    b.bge(T1, A4, cmp_done); // j == len: full match
    b.add(T7, T0, T1);
    b.add(T7, S0, T7);
    b.lw(T2, T7, 0);
    b.add(T7, A3, T1);
    b.lw(T3, T7, 0);
    b.bne(T2, T3, cmp_fail);
    b.addi(T1, T1, 1);
    b.j(cmp_top);
    b.bind(cmp_done);
    b.addi(S5, S5, 1);
    b.add(S6, S6, T0);
    b.bind(cmp_fail);
    b.addi(T0, T0, 1);
    b.j(pos_top);
    b.bind(pos_end);
    b.addi(A2, A2, 1);
    b.j(pat_top);
    b.bind(pat_end);

    // ---- dispatch loop ----------------------------------------------------
    b.li(T0, 0);
    let disp_top = b.label();
    let disp_next = b.label();
    let disp_end = b.label();
    b.bind(disp_top);
    b.bge(T0, S1, disp_end);
    b.add(T7, S0, T0);
    b.lw(T1, T7, 0);
    // 8-way branch tree on T1
    let ops: Vec<_> = (0..8).map(|_| b.label()).collect();
    for (v, &l) in ops.iter().enumerate().take(7) {
        b.li(T5, v as i32);
        b.beq(T1, T5, l);
    }
    b.j(ops[7]);
    // op 0: acc += 1
    b.bind(ops[0]);
    b.addi(S7, S7, 1);
    b.j(disp_next);
    // op 1: acc += i
    b.bind(ops[1]);
    b.add(S7, S7, T0);
    b.j(disp_next);
    // op 2: acc ^= c
    b.bind(ops[2]);
    b.xor(S7, S7, T1);
    b.j(disp_next);
    // op 3: acc <<= 1
    b.bind(ops[3]);
    b.slli(S7, S7, 1);
    b.j(disp_next);
    // op 4: acc -= 2
    b.bind(ops[4]);
    b.addi(S7, S7, -2);
    b.j(disp_next);
    // op 5: acc += acc >> 3
    b.bind(ops[5]);
    b.srli(T5, S7, 3);
    b.add(S7, S7, T5);
    b.j(disp_next);
    // op 6: acc *= 3
    b.bind(ops[6]);
    b.muli(S7, S7, 3);
    b.j(disp_next);
    // op 7: parity-dependent add
    b.bind(ops[7]);
    {
        let even = b.label();
        b.andi(T5, S7, 1);
        b.beqz(T5, even);
        b.addi(S7, S7, 5);
        b.j(disp_next);
        b.bind(even);
        b.addi(S7, S7, 7);
    }
    b.bind(disp_next);
    b.addi(T0, T0, 1);
    b.j(disp_top);
    b.bind(disp_end);

    b.addi(A0, A0, 1);
    b.j(pass_top);
    b.bind(pass_end);

    // checksum = matches*31 + possum + acc
    b.muli(T1, S5, 31);
    b.add(CHECKSUM_REG, T1, S6);
    b.add(CHECKSUM_REG, CHECKSUM_REG, S7);
    b.halt();

    Workload {
        name: "perl",
        description: "multi-pattern text matcher + opcode dispatch (interpreter branch profile)",
        program: b.build().expect("perl assembles"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_isa::Machine;

    #[test]
    fn assembly_matches_reference() {
        for (scale, salt) in [(1, 0), (2, 0), (1, 5)] {
            let w = build(scale, salt);
            let mut m = Machine::new(&w.program);
            m.run(&w.program, u64::MAX);
            assert!(m.halted());
            assert_eq!(
                m.reg(CHECKSUM_REG),
                reference(&text(salt), &patterns(), scale),
                "scale {scale} salt {salt}"
            );
        }
    }

    #[test]
    fn patterns_actually_match() {
        let t = text(0);
        let mut matches = 0;
        for p in patterns() {
            for i in 0..=(t.len() - p.len()) {
                if t[i..i + p.len()] == p[..] {
                    matches += 1;
                }
            }
        }
        assert!(matches > 5, "alphabet too sparse: {matches} matches");
    }
}
