//! Window-based boosting measurement (the paper's §4.2).

use cestim_pipeline::{OutcomeEvent, SimObserver};
use std::collections::VecDeque;

/// Measures the boosted predictive value of `k` consecutive low-confidence
/// estimates: `P[at least one of the k branches is mispredicted]`.
///
/// §4.2 is explicit that boosting "describes the state of the pipeline
/// rather than the state of a particular branch": seeing `k` consecutive LC
/// estimates is evidence that *something* in the window will not commit.
/// Under the Bernoulli approximation the value is `1 − (1 − PVN)^k`; this
/// observer measures it directly over the committed branch stream (sliding
/// windows within LC runs) so the approximation can be validated.
#[derive(Debug, Clone)]
pub struct BoostAnalysis {
    estimator_index: usize,
    max_k: u32,
    /// Outcomes (mispredicted?) of the current LC run, newest at the back.
    run: VecDeque<bool>,
    /// `(windows, windows with ≥1 misprediction)` per k, index 0 = k=1.
    counts: Vec<(u64, u64)>,
}

impl BoostAnalysis {
    /// Creates the analysis for the estimator at `estimator_index`,
    /// measuring window sizes `1..=max_k`.
    ///
    /// # Panics
    ///
    /// Panics if `max_k == 0`.
    pub fn new(estimator_index: usize, max_k: u32) -> BoostAnalysis {
        assert!(max_k >= 1, "need at least one window size");
        BoostAnalysis {
            estimator_index,
            max_k,
            run: VecDeque::new(),
            counts: vec![(0, 0); max_k as usize],
        }
    }

    /// Number of `k`-windows observed.
    pub fn windows(&self, k: u32) -> u64 {
        self.counts[(k - 1) as usize].0
    }

    /// Measured `P[≥1 misprediction | k consecutive LC]`; `NaN` before any
    /// window of that size was seen.
    pub fn boosted_pvn(&self, k: u32) -> f64 {
        let (w, h) = self.counts[(k - 1) as usize];
        h as f64 / w as f64
    }

    /// The Bernoulli model value `1 − (1 − pvn)^k` for comparison.
    pub fn model(pvn: f64, k: u32) -> f64 {
        1.0 - (1.0 - pvn).powi(k as i32)
    }

    /// Raw `(windows, windows with ≥1 misprediction)` counts per window
    /// size, index 0 = `k=1` — the mergeable summary of one run.
    pub fn counts(&self) -> &[(u64, u64)] {
        &self.counts
    }

    /// Accumulates per-workload counts from another analysis, so runs
    /// executed independently (e.g. on an executor pool) can be folded
    /// into one measurement.
    ///
    /// # Panics
    ///
    /// Panics if `other` measured a different set of window sizes.
    pub fn absorb_counts(&mut self, other: &[(u64, u64)]) {
        assert_eq!(
            self.counts.len(),
            other.len(),
            "window-size mismatch when merging boost counts"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(other) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
        }
    }
}

impl SimObserver for BoostAnalysis {
    fn on_branch_outcome(&mut self, ev: &OutcomeEvent<'_>) {
        if !ev.committed {
            return;
        }
        let Some(est) = ev.estimates.get(self.estimator_index) else {
            return;
        };
        if est.is_high() {
            self.run.clear();
            return;
        }
        self.run.push_back(ev.mispredicted);
        if self.run.len() > self.max_k as usize {
            self.run.pop_front();
        }
        // Sliding windows ending at this branch, for every k the run covers.
        for k in 1..=self.run.len() {
            let any = self.run.iter().rev().take(k).any(|&m| m);
            let c = &mut self.counts[k - 1];
            c.0 += 1;
            c.1 += any as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_core::Confidence;

    fn ev(mispredicted: bool, est: Confidence, committed: bool) -> OutcomeEvent<'static> {
        let estimates: &'static [Confidence] = match est {
            Confidence::High => &[Confidence::High],
            Confidence::Low => &[Confidence::Low],
        };
        OutcomeEvent {
            seq: 0,
            pc: 0,
            predicted_taken: true,
            actual_taken: !mispredicted,
            mispredicted,
            committed,
            fetch_cycle: 0,
            resolve_cycle: None,
            ghr: 0,
            estimates,
        }
    }

    #[test]
    fn windows_count_consecutive_lc_only() {
        use Confidence::{High, Low};
        let mut a = BoostAnalysis::new(0, 2);
        a.on_branch_outcome(&ev(false, Low, true)); // run len 1
        a.on_branch_outcome(&ev(true, Low, true)); // run len 2
        a.on_branch_outcome(&ev(false, High, true)); // reset
        a.on_branch_outcome(&ev(false, Low, true)); // run len 1
        assert_eq!(a.windows(1), 3);
        assert_eq!(a.windows(2), 1);
        // The only 2-window contains one misprediction.
        assert_eq!(a.boosted_pvn(2), 1.0);
        // 1-windows: one of three mispredicted.
        assert!((a.boosted_pvn(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn squashed_branches_are_ignored() {
        let mut a = BoostAnalysis::new(0, 2);
        a.on_branch_outcome(&ev(true, Confidence::Low, false));
        assert_eq!(a.windows(1), 0);
    }

    #[test]
    fn boosted_pvn_is_monotone_in_k_for_bernoulli_streams() {
        // Synthetic independent stream: LC always, misprediction 30%.
        let mut a = BoostAnalysis::new(0, 3);
        let mut x = 7u32;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            a.on_branch_outcome(&ev(x % 10 < 3, Confidence::Low, true));
        }
        let p1 = a.boosted_pvn(1);
        let p2 = a.boosted_pvn(2);
        let p3 = a.boosted_pvn(3);
        assert!(p1 < p2 && p2 < p3);
        assert!((p2 - BoostAnalysis::model(p1, 2)).abs() < 0.02, "{p2}");
        assert!((p3 - BoostAnalysis::model(p1, 3)).abs() < 0.02, "{p3}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_k_rejected() {
        let _ = BoostAnalysis::new(0, 0);
    }
}
