//! Misprediction-distance histograms (the paper's Figures 6–9).

use cestim_pipeline::{OutcomeEvent, PredictEvent, ResolveEvent, SimObserver};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Histogram of branch outcomes bucketed by distance to the previous
/// misprediction.
///
/// Distance 1 is the branch immediately following a misprediction; the last
/// bucket aggregates all distances `>= max_distance`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    max_distance: u64,
    /// `(mispredictions, total)` per distance bucket, index 0 = distance 1.
    buckets: Vec<(u64, u64)>,
    mispredicted: u64,
    total: u64,
}

impl DistanceHistogram {
    /// Creates an empty histogram with `max_distance` buckets; the final
    /// bucket aggregates all larger distances.
    ///
    /// # Panics
    ///
    /// Panics if `max_distance == 0`.
    pub fn new(max_distance: u64) -> DistanceHistogram {
        assert!(max_distance >= 1, "need at least one distance bucket");
        DistanceHistogram {
            max_distance,
            buckets: vec![(0, 0); max_distance as usize],
            mispredicted: 0,
            total: 0,
        }
    }

    /// Records one branch at `distance` (1-based) after the previous
    /// misprediction (or mis-estimation).
    pub fn record(&mut self, distance: u64, mispredicted: bool) {
        debug_assert!(distance >= 1);
        let idx = (distance.min(self.max_distance) - 1) as usize;
        self.buckets[idx].0 += mispredicted as u64;
        self.buckets[idx].1 += 1;
        self.mispredicted += mispredicted as u64;
        self.total += 1;
    }

    /// Misprediction rate of branches at `distance` (1-based); `NaN` when
    /// the bucket is empty. Distances beyond the cap share the last bucket.
    pub fn rate(&self, distance: u64) -> f64 {
        let (m, t) = self.buckets[(distance.min(self.max_distance) - 1) as usize];
        m as f64 / t as f64
    }

    /// Number of branches observed at `distance`.
    pub fn count(&self, distance: u64) -> u64 {
        self.buckets[(distance.min(self.max_distance) - 1) as usize].1
    }

    /// Overall average misprediction rate (the flat reference line in the
    /// paper's figures).
    pub fn average_rate(&self) -> f64 {
        self.mispredicted as f64 / self.total as f64
    }

    /// Total branches observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest tracked distance (final bucket is `>= max_distance`).
    pub fn max_distance(&self) -> u64 {
        self.max_distance
    }

    /// Merges another histogram (bucket-wise addition), for aggregating
    /// across benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different `max_distance`.
    pub fn merge(&mut self, other: &DistanceHistogram) {
        assert_eq!(
            self.max_distance, other.max_distance,
            "cannot merge histograms of different depth"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            a.0 += b.0;
            a.1 += b.1;
        }
        self.mispredicted += other.mispredicted;
        self.total += other.total;
    }

    /// `(distance, rate, count)` series for plotting; empty buckets are
    /// skipped.
    pub fn series(&self) -> Vec<(u64, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &(_, t))| t > 0)
            .map(|(i, &(m, t))| (i as u64 + 1, m as f64 / t as f64, t))
            .collect()
    }
}

/// Which of the four figure-series a histogram belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceSeries {
    /// Precise misprediction information, all fetched branches.
    PreciseAll,
    /// Precise misprediction information, committed branches only.
    PreciseCommitted,
    /// Perceived (resolution-time) information, all fetched branches.
    PerceivedAll,
    /// Perceived information, committed branches only.
    PerceivedCommitted,
}

/// Streaming observer computing all four misprediction-distance series.
///
/// * **Precise / all** (Figs 6–7 "all branches"): distance counted in the
///   fetch-order stream of all branches, reset the moment a mispredicted
///   branch is *fetched* — the simulator's omniscient view.
/// * **Precise / committed** (Figs 6–7 "committed branches"): distance
///   counted in the committed-branch stream only (what an ordinary program
///   trace would measure, as in Heil & Smith).
/// * **Perceived / all** and **perceived / committed** (Figs 8–9): distance
///   since the most recent misprediction *resolution* — what real hardware
///   can know. The reset is driven by resolution events (including
///   wrong-path resolutions), so the clustering appears stretched to longer
///   distances.
///
/// Model note: with in-order fetch and recovery-at-resolution, every
/// wrong-path fetch shadow ends in a perceived-counter reset, so for the
/// *committed* population the perceived distance provably equals the
/// precise committed distance — the perceived skew the paper highlights
/// lives in the all-branches population (which, as the paper notes, is the
/// population a real pipeline acts on).
#[derive(Debug, Clone)]
pub struct DistanceAnalysis {
    precise_all: DistanceHistogram,
    precise_committed: DistanceHistogram,
    perceived_all: DistanceHistogram,
    perceived_committed: DistanceHistogram,
    /// Branches since the last mispredicted branch, fetch order.
    since_fetch_mispredict: u64,
    /// Committed branches since the last mispredicted committed branch.
    since_commit_mispredict: u64,
    /// Branches fetched since the last *resolved* misprediction.
    since_resolved_mispredict: u64,
    /// seq → perceived distance captured at predict time, joined with the
    /// commit/squash outcome later. Bounded by the speculation window.
    pending_perceived: HashMap<u64, u64>,
}

impl DistanceAnalysis {
    /// Creates the analysis with `max_distance` buckets per series (the
    /// paper plots up to a few tens of branches; 64 is comfortable).
    pub fn new(max_distance: u64) -> DistanceAnalysis {
        DistanceAnalysis {
            precise_all: DistanceHistogram::new(max_distance),
            precise_committed: DistanceHistogram::new(max_distance),
            perceived_all: DistanceHistogram::new(max_distance),
            perceived_committed: DistanceHistogram::new(max_distance),
            since_fetch_mispredict: u64::MAX / 2, // "no misprediction yet"
            since_commit_mispredict: u64::MAX / 2,
            since_resolved_mispredict: u64::MAX / 2,
            pending_perceived: HashMap::new(),
        }
    }

    /// Merges another analysis's histograms into this one (for aggregating
    /// across benchmarks). Run-position state (distance counters, pending
    /// joins) is not merged — merge only *completed* analyses.
    ///
    /// # Panics
    ///
    /// Panics if the two analyses use different bucket depths.
    pub fn merge_from(&mut self, other: &DistanceAnalysis) {
        self.precise_all.merge(&other.precise_all);
        self.precise_committed.merge(&other.precise_committed);
        self.perceived_all.merge(&other.perceived_all);
        self.perceived_committed.merge(&other.perceived_committed);
    }

    /// The histogram for one of the four series.
    pub fn histogram(&self, series: DistanceSeries) -> &DistanceHistogram {
        match series {
            DistanceSeries::PreciseAll => &self.precise_all,
            DistanceSeries::PreciseCommitted => &self.precise_committed,
            DistanceSeries::PerceivedAll => &self.perceived_all,
            DistanceSeries::PerceivedCommitted => &self.perceived_committed,
        }
    }
}

impl SimObserver for DistanceAnalysis {
    fn on_branch_predicted(&mut self, ev: &PredictEvent<'_>) {
        // Precise, all branches: omniscient reset at fetch of a mispredict.
        let d = self.since_fetch_mispredict.saturating_add(1);
        self.precise_all.record(d, ev.mispredicted);
        if ev.mispredicted {
            self.since_fetch_mispredict = 0;
        } else {
            self.since_fetch_mispredict += 1;
        }

        // Perceived: distance since last resolved misprediction, recorded
        // now, classified by commit status at outcome time.
        let pd = self.since_resolved_mispredict.saturating_add(1);
        self.perceived_all.record(pd, ev.mispredicted);
        self.pending_perceived.insert(ev.seq, pd);
        self.since_resolved_mispredict = self.since_resolved_mispredict.saturating_add(1);
    }

    fn on_branch_resolved(&mut self, ev: &ResolveEvent) {
        if ev.mispredicted {
            self.since_resolved_mispredict = 0;
        }
    }

    fn on_branch_outcome(&mut self, ev: &OutcomeEvent<'_>) {
        let pd = self.pending_perceived.remove(&ev.seq);
        if !ev.committed {
            return;
        }
        // Precise, committed stream (trace-equivalent measurement).
        let d = self.since_commit_mispredict.saturating_add(1);
        self.precise_committed.record(d, ev.mispredicted);
        if ev.mispredicted {
            self.since_commit_mispredict = 0;
        } else {
            self.since_commit_mispredict += 1;
        }
        if let Some(pd) = pd {
            self.perceived_committed.record(pd, ev.mispredicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predict_ev(seq: u64, mispredicted: bool) -> PredictEvent<'static> {
        PredictEvent {
            seq,
            pc: 0,
            predicted_taken: true,
            actual_taken: !mispredicted,
            mispredicted,
            cycle: seq,
            ghr: 0,
            estimates: &[],
        }
    }

    fn outcome_ev(seq: u64, mispredicted: bool, committed: bool) -> OutcomeEvent<'static> {
        OutcomeEvent {
            seq,
            pc: 0,
            predicted_taken: true,
            actual_taken: !mispredicted,
            mispredicted,
            committed,
            fetch_cycle: seq,
            resolve_cycle: Some(seq + 3),
            ghr: 0,
            estimates: &[],
        }
    }

    #[test]
    fn histogram_buckets_and_rates() {
        let mut h = DistanceHistogram::new(8);
        h.record(1, true);
        h.record(1, false);
        h.record(3, false);
        h.record(100, true); // clamps into the >=8 bucket
        assert!((h.rate(1) - 0.5).abs() < 1e-12);
        assert_eq!(h.rate(3), 0.0);
        assert_eq!(h.rate(8), 1.0);
        assert_eq!(h.count(8), 1);
        assert!((h.average_rate() - 0.5).abs() < 1e-12);
        assert_eq!(h.series().len(), 3);
    }

    #[test]
    fn precise_all_clusters_resets_at_fetch() {
        let mut a = DistanceAnalysis::new(16);
        // Mispredict, then three correct, then mispredict.
        for (seq, mis) in [(0, true), (1, false), (2, false), (3, false), (4, true)] {
            a.on_branch_predicted(&predict_ev(seq, mis));
        }
        let h = a.histogram(DistanceSeries::PreciseAll);
        // seq1 is at distance 1 after the seq0 mispredict; seq4 at distance 4.
        assert_eq!(h.count(1), 1);
        assert_eq!(h.rate(1), 0.0);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.rate(4), 1.0);
    }

    #[test]
    fn committed_stream_ignores_squashed_branches() {
        let mut a = DistanceAnalysis::new(16);
        a.on_branch_predicted(&predict_ev(0, true));
        a.on_branch_predicted(&predict_ev(1, false)); // wrong path, squashed
        a.on_branch_predicted(&predict_ev(2, false));
        a.on_branch_outcome(&outcome_ev(0, true, true));
        a.on_branch_outcome(&outcome_ev(1, false, false));
        a.on_branch_outcome(&outcome_ev(2, false, true));
        let h = a.histogram(DistanceSeries::PreciseCommitted);
        assert_eq!(h.total(), 2, "only committed branches counted");
        // seq2 is the first *committed* branch after the mispredict: dist 1.
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn perceived_resets_only_at_resolution() {
        let mut a = DistanceAnalysis::new(16);
        // A mispredicted branch is fetched at seq0 but resolves later;
        // branches seq1,seq2 fetched meanwhile measure a long distance.
        a.on_branch_predicted(&predict_ev(0, true));
        a.on_branch_predicted(&predict_ev(1, false));
        a.on_branch_predicted(&predict_ev(2, false));
        a.on_branch_resolved(&ResolveEvent {
            seq: 0,
            pc: 0,
            mispredicted: true,
            cycle: 5,
        });
        a.on_branch_predicted(&predict_ev(3, false));
        let h = a.histogram(DistanceSeries::PerceivedAll);
        // seq3 is the first branch after the resolution: perceived dist 1.
        assert_eq!(h.count(1), 1);
        // seq0..2 land in the far bucket (no resolution seen yet).
        assert_eq!(h.count(16), 3);
    }

    #[test]
    fn perceived_committed_joins_on_outcome() {
        let mut a = DistanceAnalysis::new(16);
        a.on_branch_predicted(&predict_ev(0, true));
        a.on_branch_resolved(&ResolveEvent {
            seq: 0,
            pc: 0,
            mispredicted: true,
            cycle: 3,
        });
        a.on_branch_predicted(&predict_ev(1, false)); // dist 1, will squash
        a.on_branch_predicted(&predict_ev(2, false)); // dist 2, will commit
        a.on_branch_outcome(&outcome_ev(0, true, true));
        a.on_branch_outcome(&outcome_ev(1, false, false));
        a.on_branch_outcome(&outcome_ev(2, false, true));
        let h = a.histogram(DistanceSeries::PerceivedCommitted);
        assert_eq!(h.total(), 2, "seq0 (far bucket) and seq2");
        assert_eq!(h.count(2), 1);
        assert!(a.pending_perceived.is_empty(), "pending map drains");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_buckets_rejected() {
        let _ = DistanceHistogram::new(0);
    }
}
