//! Mis-estimation clustering analysis (the paper's §4.1, last paragraph).

use crate::DistanceHistogram;
use cestim_pipeline::{OutcomeEvent, SimObserver};
use serde::{Deserialize, Serialize};

/// Streaming observer measuring how *confidence mis-estimations* cluster.
///
/// A confidence estimate is **wrong** (a mis-estimation) when it disagrees
/// with the eventual prediction outcome: high confidence on a mispredicted
/// branch, or low confidence on a correctly predicted one. The paper
/// measures a "mis-estimation distance" analogous to the misprediction
/// distance and finds mis-estimations are only *slightly* clustered (45 %
/// mis-estimation rate immediately after a mis-estimation, decaying to 33 %
/// beyond distance 8 in their configurations) — which is what licenses
/// treating consecutive low-confidence events as near-independent Bernoulli
/// trials for boosting (§4.2).
///
/// The analysis runs over the committed branch stream and watches the
/// estimator at `estimator_index` in the simulator's attach order.
#[derive(Debug, Clone)]
pub struct ClusterAnalysis {
    estimator_index: usize,
    histogram: DistanceHistogram,
    since_misestimate: u64,
}

/// Condensed clustering numbers, in the form the paper quotes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSummary {
    /// Mis-estimation rate immediately after a mis-estimation (distance 1).
    pub rate_at_1: f64,
    /// Mis-estimation rate at distance 4.
    pub rate_at_4: f64,
    /// Mis-estimation rate beyond distance 8 (the far bucket).
    pub rate_beyond_8: f64,
    /// Overall mis-estimation rate.
    pub average: f64,
}

impl ClusterAnalysis {
    /// Creates the analysis for the estimator at `estimator_index`, with
    /// distance buckets up to `max_distance`.
    pub fn new(estimator_index: usize, max_distance: u64) -> ClusterAnalysis {
        ClusterAnalysis {
            estimator_index,
            histogram: DistanceHistogram::new(max_distance),
            since_misestimate: u64::MAX / 2,
        }
    }

    /// The distance histogram (distance = committed branches since the last
    /// mis-estimation; "misprediction" in the histogram's field names reads
    /// as "mis-estimation" here).
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.histogram
    }

    /// Summary statistics in the paper's form.
    ///
    /// Values may be `NaN` when the corresponding bucket is empty. The far
    /// bucket is the aggregate of all distances `> 8` when the histogram has
    /// more than 9 buckets.
    pub fn summary(&self) -> ClusterSummary {
        ClusterAnalysis::summary_of(&self.histogram)
    }

    /// Summary of an arbitrary mis-estimation distance histogram — e.g. one
    /// merged across benchmarks with
    /// [`DistanceHistogram::merge`](crate::DistanceHistogram::merge).
    pub fn summary_of(histogram: &DistanceHistogram) -> ClusterSummary {
        // Aggregate everything beyond distance 8 by re-walking the series.
        let (mut mis, mut tot) = (0u64, 0u64);
        for (d, rate, count) in histogram.series() {
            if d > 8 {
                mis += (rate * count as f64).round() as u64;
                tot += count;
            }
        }
        ClusterSummary {
            rate_at_1: histogram.rate(1),
            rate_at_4: histogram.rate(4),
            rate_beyond_8: mis as f64 / tot as f64,
            average: histogram.average_rate(),
        }
    }
}

impl SimObserver for ClusterAnalysis {
    fn on_branch_outcome(&mut self, ev: &OutcomeEvent<'_>) {
        if !ev.committed {
            return;
        }
        let Some(est) = ev.estimates.get(self.estimator_index) else {
            return;
        };
        // High confidence is "correct" estimation iff the prediction was
        // correct; low confidence iff it was mispredicted.
        let misestimated = est.is_high() == ev.mispredicted;
        let d = self.since_misestimate.saturating_add(1);
        self.histogram.record(d, misestimated);
        if misestimated {
            self.since_misestimate = 0;
        } else {
            self.since_misestimate += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cestim_core::Confidence;

    fn ev(seq: u64, mispredicted: bool, est: Confidence, committed: bool) -> OutcomeEvent<'static> {
        let estimates: &'static [Confidence] = match est {
            Confidence::High => &[Confidence::High],
            Confidence::Low => &[Confidence::Low],
        };
        OutcomeEvent {
            seq,
            pc: 0,
            predicted_taken: true,
            actual_taken: !mispredicted,
            mispredicted,
            committed,
            fetch_cycle: seq,
            resolve_cycle: Some(seq),
            ghr: 0,
            estimates,
        }
    }

    #[test]
    fn misestimation_definition() {
        use Confidence::{High, Low};
        let mut a = ClusterAnalysis::new(0, 16);
        // HC+correct and LC+mispredicted are *good* estimates.
        a.on_branch_outcome(&ev(0, false, High, true));
        a.on_branch_outcome(&ev(1, true, Low, true));
        assert_eq!(a.histogram().total(), 2);
        assert_eq!(a.histogram().average_rate(), 0.0);
        // HC+mispredicted and LC+correct are mis-estimations.
        a.on_branch_outcome(&ev(2, true, High, true));
        a.on_branch_outcome(&ev(3, false, Low, true));
        assert!((a.histogram().average_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distance_resets_on_misestimation() {
        use Confidence::{High, Low};
        let mut a = ClusterAnalysis::new(0, 16);
        a.on_branch_outcome(&ev(0, false, Low, true)); // mis-est, reset
        a.on_branch_outcome(&ev(1, false, High, true)); // dist 1, good
        a.on_branch_outcome(&ev(2, false, Low, true)); // dist 2, mis-est
        assert_eq!(a.histogram().count(1), 1);
        assert_eq!(a.histogram().rate(1), 0.0);
        assert_eq!(a.histogram().rate(2), 1.0);
    }

    #[test]
    fn squashed_branches_are_ignored() {
        use Confidence::High;
        let mut a = ClusterAnalysis::new(0, 16);
        a.on_branch_outcome(&ev(0, true, High, false));
        assert_eq!(a.histogram().total(), 0);
    }

    #[test]
    fn missing_estimator_index_is_ignored() {
        let mut a = ClusterAnalysis::new(3, 16);
        a.on_branch_outcome(&ev(0, false, Confidence::High, true));
        assert_eq!(a.histogram().total(), 0);
    }

    #[test]
    fn summary_aggregates_far_bucket() {
        use Confidence::{High, Low};
        let mut a = ClusterAnalysis::new(0, 32);
        // One mis-estimation, then a long run of good estimates, then one
        // far mis-estimation.
        a.on_branch_outcome(&ev(0, false, Low, true));
        for s in 1..=20 {
            a.on_branch_outcome(&ev(s, false, High, true));
        }
        a.on_branch_outcome(&ev(21, false, Low, true));
        let s = a.summary();
        assert_eq!(s.rate_at_1, 0.0);
        assert!(s.rate_beyond_8 > 0.0, "far mis-estimation captured");
        assert!(s.average < 0.15);
    }
}
