//! # cestim-trace
//!
//! Speculative branch traces and the temporal analyses of Klauser et al.'s
//! §4: misprediction-distance histograms (Figures 6–9) and
//! confidence-mis-estimation clustering.
//!
//! Everything here is built on `cestim-pipeline`'s
//! [`SimObserver`](cestim_pipeline::SimObserver) hooks, so
//! the analyses run *streaming* during simulation — no gigabyte traces are
//! retained unless you explicitly use [`TraceCollector`].
//!
//! * [`DistanceAnalysis`] — misprediction rate as a function of the distance
//!   (in branches) to the previous misprediction, in four flavours:
//!   {precise, perceived} × {all branches, committed branches}. *Precise*
//!   uses complete pipeline knowledge (a misprediction "counts" the moment
//!   the mispredicted branch is fetched); *perceived* uses only what a real
//!   front-end can see (a misprediction counts when it *resolves*), which
//!   skews the clustering toward larger distances — the paper's key §4.1
//!   observation.
//! * [`ClusterAnalysis`] — the same distance treatment applied to an
//!   *estimator's* mistakes (mis-estimations), showing they are only
//!   slightly clustered, which is what justifies the §4.2 Bernoulli
//!   boosting approximation.
//! * [`BoostAnalysis`] — §4.2's boosting, measured the way the paper means
//!   it: `P[≥1 misprediction | k consecutive low-confidence estimates]`, a
//!   pipeline-state property validated against the Bernoulli model.
//! * [`TraceCollector`] / [`BranchRecord`] — retain or serialize the full
//!   per-branch speculative trace (JSON-lines via serde).
//! * [`replay`] / [`replay_jsonl`] — feed a recorded `cestim-obs` trace
//!   back through any observer, reproducing the live analyses post-hoc
//!   bit-for-bit from a trace file.

#![warn(missing_docs)]

mod boost;
mod cluster;
mod distance;
mod record;
mod replay;

pub use boost::BoostAnalysis;
pub use cluster::{ClusterAnalysis, ClusterSummary};
pub use distance::{DistanceAnalysis, DistanceHistogram, DistanceSeries};
pub use record::{read_jsonl, write_jsonl, BranchRecord, TraceCollector};
pub use replay::{load_trace, replay, replay_event, replay_jsonl};
