//! Retained speculative traces and their serialization.

use cestim_core::Confidence;
use cestim_pipeline::{OutcomeEvent, SimObserver};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// One fetched conditional branch, with everything the paper's analyses
/// need: prediction, outcome, commit status, timing, and the confidence
/// estimates of every attached estimator.
///
/// This is the owned form of
/// [`OutcomeEvent`](cestim_pipeline::OutcomeEvent), suitable for retention
/// and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Fetch-order sequence number among all fetched branches.
    pub seq: u64,
    /// Branch PC.
    pub pc: u32,
    /// Predicted direction.
    pub predicted_taken: bool,
    /// Architecturally correct direction on the fetched path.
    pub actual_taken: bool,
    /// `predicted_taken != actual_taken`.
    pub mispredicted: bool,
    /// `true` when the branch committed.
    pub committed: bool,
    /// Fetch/decode cycle.
    pub fetch_cycle: u64,
    /// Resolution cycle; `None` when squashed before resolving.
    pub resolve_cycle: Option<u64>,
    /// Speculative global history at prediction.
    pub ghr: u32,
    /// Per-estimator confidence estimates, in attach order.
    pub estimates: Vec<Confidence>,
}

impl From<&OutcomeEvent<'_>> for BranchRecord {
    fn from(ev: &OutcomeEvent<'_>) -> BranchRecord {
        BranchRecord {
            seq: ev.seq,
            pc: ev.pc,
            predicted_taken: ev.predicted_taken,
            actual_taken: ev.actual_taken,
            mispredicted: ev.mispredicted,
            committed: ev.committed,
            fetch_cycle: ev.fetch_cycle,
            resolve_cycle: ev.resolve_cycle,
            ghr: ev.ghr,
            estimates: ev.estimates.to_vec(),
        }
    }
}

/// Observer retaining the full speculative branch trace in memory.
///
/// Only use for bounded runs — one record per fetched branch. The streaming
/// analyses ([`DistanceAnalysis`](crate::DistanceAnalysis),
/// [`ClusterAnalysis`](crate::ClusterAnalysis)) cover the paper's
/// measurements without retention.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    records: Vec<BranchRecord>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    /// Records collected so far, in outcome order (commits in program
    /// order, squashes at their recovery points).
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Consumes the collector and returns the records.
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl SimObserver for TraceCollector {
    fn on_branch_outcome(&mut self, ev: &OutcomeEvent<'_>) {
        self.records.push(BranchRecord::from(ev));
    }
}

/// Writes records as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from the writer; serialization of `BranchRecord`
/// itself cannot fail.
pub fn write_jsonl<W: Write>(mut w: W, records: &[BranchRecord]) -> io::Result<()> {
    for r in records {
        serde_json::to_writer(&mut w, r)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads records from JSON lines (blank lines are skipped).
///
/// # Errors
///
/// Returns an error on I/O failure or malformed JSON.
pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Vec<BranchRecord>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> BranchRecord {
        BranchRecord {
            seq,
            pc: 0x40,
            predicted_taken: true,
            actual_taken: false,
            mispredicted: true,
            committed: seq.is_multiple_of(2),
            fetch_cycle: seq * 2,
            resolve_cycle: (!seq.is_multiple_of(3)).then_some(seq * 2 + 5),
            ghr: 0xABC,
            estimates: vec![Confidence::High, Confidence::Low],
        }
    }

    #[test]
    fn collector_retains_outcomes() {
        let mut c = TraceCollector::new();
        assert!(c.is_empty());
        let est = [Confidence::Low];
        c.on_branch_outcome(&OutcomeEvent {
            seq: 7,
            pc: 1,
            predicted_taken: false,
            actual_taken: false,
            mispredicted: false,
            committed: true,
            fetch_cycle: 10,
            resolve_cycle: Some(14),
            ghr: 3,
            estimates: &est,
        });
        assert_eq!(c.len(), 1);
        let r = &c.records()[0];
        assert_eq!(r.seq, 7);
        assert_eq!(r.estimates, vec![Confidence::Low]);
        assert_eq!(c.into_records().len(), 1);
    }

    #[test]
    fn jsonl_round_trip() {
        let records: Vec<BranchRecord> = (0..5).map(sample).collect();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 5);
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn read_skips_blank_lines() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[sample(1)]).unwrap();
        buf.extend_from_slice(b"\n\n");
        write_jsonl(&mut buf, &[sample(2)]).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        let res = read_jsonl(&b"{not json}\n"[..]);
        assert!(res.is_err());
    }
}
