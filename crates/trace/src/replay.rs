//! Post-hoc replay of recorded [`TraceEvent`] streams through any
//! [`SimObserver`].
//!
//! A `cestim-obs` trace records pipeline events in exactly the order (and
//! with exactly the payloads) the live [`SimObserver`] hooks saw them, so
//! replaying a trace through [`DistanceAnalysis`](crate::DistanceAnalysis),
//! [`ClusterAnalysis`](crate::ClusterAnalysis) or any other observer
//! reproduces the live analysis bit-for-bit — without re-running the
//! simulation.

use cestim_obs::{read_trace_jsonl, TraceEvent};
use cestim_pipeline::{
    GateEvent, OutcomeEvent, PredictEvent, RecoveryEvent, ResolveEvent, SimObserver,
};
use std::io::{self, BufRead};

/// Replays one recorded event into an observer.
///
/// `Predict`/`Resolve` map onto the corresponding live hooks; `Commit` and
/// `Squash` both map onto [`SimObserver::on_branch_outcome`] (with
/// `committed` true and false respectively); `Recovery` and `Gate` hit
/// their hooks; `Fetch` bursts carry no observer hook and are skipped.
pub fn replay_event(ev: &TraceEvent, obs: &mut dyn SimObserver) {
    match ev {
        TraceEvent::Fetch { .. } => {}
        TraceEvent::Predict {
            seq,
            pc,
            cycle,
            predicted_taken,
            actual_taken,
            mispredicted,
            ghr,
            estimates,
        } => obs.on_branch_predicted(&PredictEvent {
            seq: *seq,
            pc: *pc,
            predicted_taken: *predicted_taken,
            actual_taken: *actual_taken,
            mispredicted: *mispredicted,
            cycle: *cycle,
            ghr: *ghr,
            estimates,
        }),
        TraceEvent::Resolve {
            seq,
            pc,
            cycle,
            mispredicted,
        } => obs.on_branch_resolved(&ResolveEvent {
            seq: *seq,
            pc: *pc,
            mispredicted: *mispredicted,
            cycle: *cycle,
        }),
        TraceEvent::Commit {
            seq,
            pc,
            predicted_taken,
            actual_taken,
            mispredicted,
            fetch_cycle,
            resolve_cycle,
            ghr,
            estimates,
        }
        | TraceEvent::Squash {
            seq,
            pc,
            predicted_taken,
            actual_taken,
            mispredicted,
            fetch_cycle,
            resolve_cycle,
            ghr,
            estimates,
        } => obs.on_branch_outcome(&OutcomeEvent {
            seq: *seq,
            pc: *pc,
            predicted_taken: *predicted_taken,
            actual_taken: *actual_taken,
            mispredicted: *mispredicted,
            committed: matches!(ev, TraceEvent::Commit { .. }),
            fetch_cycle: *fetch_cycle,
            resolve_cycle: *resolve_cycle,
            ghr: *ghr,
            estimates,
        }),
        TraceEvent::Recovery {
            seq,
            pc,
            cycle,
            squashed,
            penalty,
        } => obs.on_recovery(&RecoveryEvent {
            seq: *seq,
            pc: *pc,
            cycle: *cycle,
            squashed: *squashed,
            penalty: *penalty,
        }),
        TraceEvent::Gate {
            cycle,
            low_confidence,
        } => obs.on_fetch_gated(&GateEvent {
            cycle: *cycle,
            low_confidence: *low_confidence,
        }),
    }
}

/// Replays a sequence of recorded events in order; returns the number of
/// events replayed.
pub fn replay<'e>(
    events: impl IntoIterator<Item = &'e TraceEvent>,
    obs: &mut dyn SimObserver,
) -> u64 {
    let mut n = 0;
    for ev in events {
        replay_event(ev, obs);
        n += 1;
    }
    n
}

/// Replays a JSONL trace (as written by `cestim-obs`'s `TraceWriter`) into
/// an observer, streaming line by line. Returns the number of events
/// replayed.
///
/// # Errors
///
/// Returns an error on I/O failure or malformed JSON.
pub fn replay_jsonl<R: BufRead>(r: R, obs: &mut dyn SimObserver) -> io::Result<u64> {
    let mut n = 0;
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceEvent = serde_json::from_str(&line)?;
        replay_event(&ev, obs);
        n += 1;
    }
    Ok(n)
}

/// Convenience: parse a whole JSONL trace into owned events (thin re-export
/// of `cestim-obs`'s reader for analyses that need random access).
///
/// # Errors
///
/// Returns an error on I/O failure or malformed JSON.
pub fn load_trace<R: BufRead>(r: R) -> io::Result<Vec<TraceEvent>> {
    read_trace_jsonl(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceAnalysis, DistanceSeries};
    use cestim_bpred::Gshare;
    use cestim_core::Jrs;
    use cestim_isa::{ProgramBuilder, Reg};
    use cestim_obs::Tracer;
    use cestim_pipeline::{PipelineConfig, Simulator};

    /// Branch on an LCG bit each iteration: misprediction-rich.
    fn noisy_program(n: i32) -> cestim_isa::Program {
        let mut b = ProgramBuilder::new();
        b.li(Reg::S0, 987654);
        b.li(Reg::T0, 0);
        b.li(Reg::T1, n);
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        b.muli(Reg::S0, Reg::S0, 1664525);
        b.addi(Reg::S0, Reg::S0, 1013904223);
        b.srli(Reg::T2, Reg::S0, 19);
        b.andi(Reg::T2, Reg::T2, 1);
        b.beqz(Reg::T2, skip);
        b.addi(Reg::T3, Reg::T3, 1);
        b.bind(skip);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn replay_reproduces_live_distance_analysis_bit_for_bit() {
        let p = noisy_program(1200);

        // Live run: distance analysis streamed from the simulator, with a
        // tracer recording the same events.
        let mut sim = Simulator::new(&p, PipelineConfig::paper(), Box::new(Gshare::new(12)));
        sim.add_estimator(Box::new(Jrs::paper_enhanced()));
        sim.set_tracer(Tracer::unbounded());
        let mut live = DistanceAnalysis::new(64);
        sim.run(&mut live);
        let tracer = sim.take_tracer();
        assert_eq!(tracer.dropped(), 0, "unbounded tracer must not drop");

        // Replay from memory.
        let mut replayed = DistanceAnalysis::new(64);
        let n = replay(tracer.events(), &mut replayed);
        assert!(n > 0);

        // And through the JSONL round trip.
        let mut buf = Vec::new();
        tracer.export_jsonl(&mut buf).unwrap();
        let mut from_file = DistanceAnalysis::new(64);
        let m = replay_jsonl(buf.as_slice(), &mut from_file).unwrap();
        assert_eq!(m, n);

        for series in [
            DistanceSeries::PreciseAll,
            DistanceSeries::PreciseCommitted,
            DistanceSeries::PerceivedAll,
            DistanceSeries::PerceivedCommitted,
        ] {
            assert_eq!(
                live.histogram(series),
                replayed.histogram(series),
                "{series:?} differs in-memory"
            );
            assert_eq!(
                live.histogram(series),
                from_file.histogram(series),
                "{series:?} differs via JSONL"
            );
        }
    }

    #[test]
    fn replay_covers_recovery_and_gate_hooks() {
        #[derive(Default)]
        struct Hooks {
            recoveries: u64,
            gated: u64,
        }
        impl SimObserver for Hooks {
            fn on_recovery(&mut self, _: &RecoveryEvent) {
                self.recoveries += 1;
            }
            fn on_fetch_gated(&mut self, _: &GateEvent) {
                self.gated += 1;
            }
        }
        let events = [
            TraceEvent::Recovery {
                seq: 0,
                pc: 4,
                cycle: 9,
                squashed: 1,
                penalty: 3,
            },
            TraceEvent::Gate {
                cycle: 10,
                low_confidence: 2,
            },
            TraceEvent::Fetch {
                cycle: 11,
                pc: 8,
                count: 4,
            },
        ];
        let mut h = Hooks::default();
        assert_eq!(replay(events.iter(), &mut h), 3);
        assert_eq!(h.recoveries, 1);
        assert_eq!(h.gated, 1);
    }
}
