//! The `Deserialize` trait and impls for std types.

use crate::error::Error;
use crate::value::{Number, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;

/// Types constructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Builds `Self` when a struct field is absent from the input.
    ///
    /// Only `Option` overrides this (absent optional fields deserialize to
    /// `None`, as with serde_json); everything else errors.
    fn from_missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

macro_rules! de_uint {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::PosInt(u)) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!(
                            "integer {u} out of range for {}", stringify!($t)))),
                    other => Err(Error::invalid_type(stringify!($t), other.kind())),
                }
            }
        }
    )*};
}

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let out_of_range =
                    |v: &dyn std::fmt::Display| Error::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)));
                match value {
                    Value::Number(Number::PosInt(u)) => {
                        <$t>::try_from(*u).map_err(|_| out_of_range(u))
                    }
                    Value::Number(Number::NegInt(i)) => {
                        <$t>::try_from(*i).map_err(|_| out_of_range(i))
                    }
                    other => Err(Error::invalid_type(stringify!($t), other.kind())),
                }
            }
        }
    )*};
}

de_uint!(u8 u16 u32 u64 usize);
de_int!(i8 i16 i32 i64 isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::invalid_type("f64", other.kind())),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::invalid_type("bool", value.kind()))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::invalid_type("string", value.kind()))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::invalid_type("array", value.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let a = value
            .as_array()
            .ok_or_else(|| Error::invalid_type("array", value.kind()))?;
        if a.len() != N {
            return Err(Error::custom(format!(
                "expected an array of length {}, found {}",
                N,
                a.len()
            )));
        }
        let items: Vec<T> = a.iter().map(T::from_value).collect::<Result<_, _>>()?;
        Ok(items.try_into().unwrap_or_else(|_| unreachable!()))
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::invalid_type("array", value.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::invalid_type("null", other.kind())),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let a = value
                    .as_array()
                    .ok_or_else(|| Error::invalid_type("array", value.kind()))?;
                if a.len() != $len {
                    return Err(Error::custom(format!(
                        "expected an array of length {}, found {}",
                        $len,
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

/// Map keys parsed back from JSON object member names.
pub trait DeserializeKey: Sized {
    /// Parses the key from an object member name.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl DeserializeKey for String {
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! de_key_int {
    ($($t:ty)*) => {$(
        impl DeserializeKey for $t {
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!(
                        "invalid {} map key `{key}`", stringify!($t)))
                })
            }
        }
    )*};
}

de_key_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: DeserializeKey + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let m = value
            .as_object()
            .ok_or_else(|| Error::invalid_type("object", value.kind()))?;
        m.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let m = value
            .as_object()
            .ok_or_else(|| Error::invalid_type("object", value.kind()))?;
        m.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

/// Externally-tagged enum helper used by derived code: splits an enum
/// payload into `(variant_name, data)`.
///
/// A bare string is a unit variant; a single-entry object is a
/// newtype/tuple/struct variant.
pub fn enum_parts<'v>(value: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
    match value {
        Value::String(s) => Ok((s.as_str(), None)),
        Value::Object(m) if m.len() == 1 => {
            let (k, v) = m.iter().next().expect("len checked");
            Ok((k.as_str(), Some(v)))
        }
        other => Err(Error::invalid_type(
            &format!("string or single-key map for enum {ty}"),
            other.kind(),
        )),
    }
}
