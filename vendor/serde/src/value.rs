//! The JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` crates.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object (insertion-ordered; equality ignores order).
    Object(Map),
}

/// A JSON number: unsigned, signed-negative, or floating point.
///
/// Construction normalizes: non-negative integers always use `PosInt`, so
/// derived equality behaves like `serde_json`'s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Integer `>= 0`.
    PosInt(u64),
    /// Integer `< 0`.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// As `u64`, when the number is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            _ => None,
        }
    }

    /// As `i64`, when the number is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }

    /// True for the `Float` representation.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl From<u64> for Number {
    fn from(u: u64) -> Number {
        Number::PosInt(u)
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Number {
        if i < 0 {
            Number::NegInt(i)
        } else {
            Number::PosInt(i as u64)
        }
    }
}

impl From<f64> for Number {
    fn from(f: f64) -> Number {
        Number::Float(f)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if !x.is_finite() {
                    // JSON has no non-finite literals; match serde_json's
                    // lossy behaviour of emitting null.
                    return write!(f, "null");
                }
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed object.
///
/// Backed by a `Vec` (objects in this workspace are small); `get` is a
/// linear scan and `insert` replaces an existing key in place.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `key` -> `value`, returning the previous value if the key
    /// was already present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Map) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// As a bool, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// As an `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As an `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As a string slice, if this is `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array, if this is `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object, if this is `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_partial_eq_int {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if Number::from(*other as i64) == *n)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

macro_rules! value_partial_eq_uint {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::PosInt(*other as u64))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_partial_eq_int!(i8 i16 i32 i64 isize);
value_partial_eq_uint!(u8 u16 u32 u64 usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.as_f64() == *other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Renders compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders pretty (2-space indented) JSON into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
