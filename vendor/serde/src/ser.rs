//! The `Serialize` trait and impls for std types.

use crate::value::{Map, Number, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;

/// Types renderable to a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Renders any serializable value (serde_json re-exports this as
/// `serde_json::to_value`, minus the `Result` wrapper — serialization in
/// this workspace cannot fail).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
    )*};
}

ser_uint!(u8 u16 u32 u64 usize);
ser_int!(i8 i16 i32 i64 isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Number {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys rendered as JSON object member names (serde_json stringifies
/// integer keys).
pub trait SerializeKey {
    /// Renders the key as an object member name.
    fn to_key(&self) -> String;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for str {
    fn to_key(&self) -> String {
        self.to_string()
    }
}

impl<T: SerializeKey + ?Sized> SerializeKey for &T {
    fn to_key(&self) -> String {
        (**self).to_key()
    }
}

macro_rules! ser_key_int {
    ($($t:ty)*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

ser_key_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // HashMap iteration order is unspecified; sort for deterministic
        // output (serde_json emits hash order, but determinism is strictly
        // more useful and round-trips identically).
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
