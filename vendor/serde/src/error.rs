//! Deserialization error type.

use std::fmt;

/// Error produced by [`Deserialize`](crate::Deserialize) implementations
/// (and re-used by the vendored `serde_json` parser).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A struct field was absent from the input object.
    pub fn missing_field(field: &str) -> Error {
        Error::custom(format!("missing field `{field}`"))
    }

    /// The input had the wrong JSON type.
    pub fn invalid_type(expected: &str, got: &str) -> Error {
        Error::custom(format!("invalid type: expected {expected}, found {got}"))
    }

    /// An enum variant name was not recognized.
    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error::custom(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}
