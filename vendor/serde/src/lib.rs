//! Minimal, offline-friendly reimplementation of the `serde` facade.
//!
//! The real `serde` crate cannot be fetched in this build environment, so
//! this vendored stand-in provides the same *external* surface the cestim
//! workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the vendored `serde_derive`
//!   proc-macro) for structs and enums without generics, using serde's
//!   externally-tagged enum representation;
//! * `Serialize` / `Deserialize` traits with impls for the primitive and
//!   collection types the workspace serializes;
//! * a JSON-shaped [`Value`] data model ([`Map`], [`Number`]) that the
//!   vendored `serde_json` re-exports.
//!
//! Instead of serde's visitor architecture, serialization goes through
//! [`Value`]: `Serialize` renders a value tree and `Deserialize` reads one.
//! This matches observable `serde_json` behaviour for every type in this
//! workspace (externally tagged enums, `Option` as `null`, maps with
//! stringified integer keys, non-finite floats as `null`).

mod de;
mod error;
mod ser;
mod value;

pub use de::{enum_parts, Deserialize, DeserializeKey};
pub use error::Error;
pub use ser::{to_value, Serialize, SerializeKey};
pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};
