//! Minimal, offline-friendly reimplementation of the `criterion` surface
//! used by the cestim benches (`harness = false` targets).
//!
//! Behaviour: when invoked with `--bench` (as `cargo bench` does), each
//! benchmark runs a short warm-up plus `sample_size` timed samples and
//! prints mean wall-clock time per iteration (and throughput when
//! configured). Invoked any other way — e.g. compiled-and-run by
//! `cargo test` — every benchmark is a no-op so test runs stay fast.

use std::fmt;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    enabled: bool,
}

impl Criterion {
    /// Builds from process arguments (`--bench` enables measurement).
    pub fn from_args() -> Criterion {
        Criterion {
            enabled: std::env::args().any(|a| a == "--bench"),
        }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(self.enabled, &id.id, 30, None, |b| f(b));
        self
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark's display identity (`group/name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(
            self.criterion.enabled,
            &label,
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(
            self.criterion.enabled,
            &label,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    enabled: bool,
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, discarding its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.enabled {
            return;
        }
        // Warm-up.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
        self.iters = self.samples as u64;
    }
}

fn run_one(
    enabled: bool,
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        enabled,
        samples: sample_size,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    if !enabled || b.iters == 0 {
        return;
    }
    let per_iter = b.total_nanos as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / per_iter * 1e3),
        Throughput::Bytes(n) => format!(" ({:.1} MB/s)", n as f64 / per_iter * 1e3),
    });
    println!(
        "bench {label:<48} {:>12.0} ns/iter{}",
        per_iter,
        rate.unwrap_or_default()
    );
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
