//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! Parses the item's `TokenStream` directly (no `syn`/`quote` — this build
//! environment is offline): only the *shape* matters — struct/enum, field
//! and variant names, tuple arities. Field types never need to be parsed
//! because the generated code calls trait methods whose concrete impl is
//! resolved by inference at the use site.
//!
//! Supported shapes (everything the cestim workspace derives):
//! * structs with named fields, tuple structs (newtype + wider), unit
//!   structs;
//! * enums with unit, newtype, tuple, and struct variants, using serde's
//!   externally-tagged representation;
//! * no generic parameters and no `#[serde(...)]` attributes (compile
//!   error if present).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated code parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated code parses")
}

// ---------------------------------------------------------------- parsing

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attribute groups and visibility qualifiers.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(t) if is_punct(t, '#') => match toks.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
                _ => return i,
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let keyword = ident_of(&toks[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("expected type name");
    i += 1;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        panic!("vendored serde_derive does not support generic types");
    }
    match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                kind: Kind::TupleStruct(count_top_level_elements(g.stream())),
            },
            _ => Input {
                name,
                kind: Kind::UnitStruct,
            },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            _ => panic!("expected enum body"),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Field names of a `{ ... }` struct body (types are skipped, tracking
/// angle-bracket depth so commas inside generic arguments don't split).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected field name");
        fields.push(name);
        i += 1; // name
        assert!(is_punct(&toks[i], ':'), "expected `:` after field name");
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a `( ... )` tuple body.
fn count_top_level_elements(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut depth = 0i32;
    let mut arity = 0;
    let mut in_element = false;
    for t in &toks {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            if in_element {
                arity += 1;
            }
            in_element = false;
            continue;
        }
        in_element = true;
    }
    if in_element {
        arity += 1;
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_elements(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from("{ let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m) }");
            s
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        s.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{vn}\"), {payload}); \
                             ::serde::Value::Object(__m) }}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inner = String::from("{ let mut __inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__inner) }");
                        s.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{vn}\"), {inner}); \
                             ::serde::Value::Object(__m) }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_ctor(target: &str, fields: &[String], source: &str) -> String {
    let mut s = format!("{target} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: match {source}.get(\"{f}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => ::serde::Deserialize::from_missing_field(\"{f}\")?,\n\
             }},\n"
        ));
    }
    s.push('}');
    s
}

fn tuple_ctor(target: &str, n: usize, source: &str, ty: &str) -> String {
    let mut s = format!(
        "{{ let __a = {source}.as_array().ok_or_else(|| \
         ::serde::Error::invalid_type(\"array\", {source}.kind()))?;\n\
         if __a.len() != {n} {{ return ::std::result::Result::Err(\
         ::serde::Error::custom(format!(\
         \"expected {n} elements for {ty}, found {{}}\", __a.len()))); }}\n\
         {target}("
    );
    for i in 0..n {
        s.push_str(&format!("::serde::Deserialize::from_value(&__a[{i}])?, "));
    }
    s.push_str(") }");
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => format!(
            "::std::result::Result::Ok({})",
            tuple_ctor(name, *n, "__v", name)
        ),
        Kind::NamedStruct(fields) => format!(
            "{{ let __m = __v.as_object().ok_or_else(|| \
             ::serde::Error::invalid_type(\"object\", __v.kind()))?;\n\
             ::std::result::Result::Ok({}) }}",
            named_fields_ctor(name, fields, "__m")
        ),
        Kind::Enum(variants) => {
            let mut s = format!(
                "{{ let (__tag, __data) = ::serde::enum_parts(__v, \"{name}\")?;\n\
                 match __tag {{\n"
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let need_data = format!(
                            "let __d = __data.ok_or_else(|| ::serde::Error::custom(\
                             \"expected a value for variant `{vn}`\"))?;"
                        );
                        if *n == 1 {
                            s.push_str(&format!(
                                "\"{vn}\" => {{ {need_data} \
                                 ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__d)?)) }}\n"
                            ));
                        } else {
                            s.push_str(&format!(
                                "\"{vn}\" => {{ {need_data} \
                                 ::std::result::Result::Ok({}) }}\n",
                                tuple_ctor(&format!("{name}::{vn}"), *n, "__d", vn)
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        s.push_str(&format!(
                            "\"{vn}\" => {{ let __d = __data.ok_or_else(|| \
                             ::serde::Error::custom(\
                             \"expected a value for variant `{vn}`\"))?;\n\
                             let __m = __d.as_object().ok_or_else(|| \
                             ::serde::Error::invalid_type(\"object\", __d.kind()))?;\n\
                             ::std::result::Result::Ok({}) }}\n",
                            named_fields_ctor(&format!("{name}::{vn}"), fields, "__m")
                        ));
                    }
                }
            }
            s.push_str(&format!(
                "__other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__other, \"{name}\")),\n}} }}"
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
