//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max_excl, "empty collection size range");
        self.min + rng.below((self.max_excl - self.min) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_excl: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}

/// Generates vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
