//! Minimal, offline-friendly reimplementation of the `proptest` surface
//! used by the cestim workspace.
//!
//! Implements the same *external* API (`proptest!`, `prop_assert*!`,
//! `prop_oneof!`, `prop_assume!`, `any`, `Just`, ranges-as-strategies,
//! `prop::collection::vec`, `prop_map`, `boxed`) over a deliberately
//! simple engine: deterministic seeded generation (seed derived from the
//! test name, so runs are reproducible) with no shrinking — a failing
//! case panics with the generated input's `Debug` form instead.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Everything tests import: `use proptest::prelude::*`.
pub mod prelude {
    /// `prop::collection::vec(...)` etc., as re-exported by real proptest.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

pub mod collection;

// ------------------------------------------------------------------ rng

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a of a test name — the per-test base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ------------------------------------------------------------- strategy

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking: `gen`
/// produces one owned value per case.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O + Clone,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------- primitives

/// Full-range generation for `any::<T>()`.
pub trait ArbitraryValue: fmt::Debug + Sized {
    /// Generates an arbitrary value of `Self`.
    fn gen_any(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty)*) => {$(
        impl ArbitraryValue for $t {
            fn gen_any(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl ArbitraryValue for bool {
    fn gen_any(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn gen_any(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::gen_any(rng)
    }
}

/// `any::<T>()`: the full-range strategy for a primitive type.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Weighted choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms; total weight must be > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.gen(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

// -------------------------------------------------------------- runner

/// Per-proptest configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

// -------------------------------------------------------------- macros

/// Defines property tests (`proptest! { #[test] fn name(x in strat) {..} }`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strat = ($($strat,)+);
                let seed = $crate::fnv1a(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    let value = $crate::Strategy::gen(&strat, &mut rng);
                    let repr = ::std::format!("{:?}", value);
                    let ($($arg,)+) = value;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::std::panic!(
                                "proptest {} failed at case {}: {}\ninput: {}",
                                stringify!($name), case, msg, repr,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($arm))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = (0u32..100, any::<bool>());
        let mut r1 = crate::TestRng::new(42);
        let mut r2 = crate::TestRng::new(42);
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::gen(&s, &mut r1),
                crate::Strategy::gen(&s, &mut r2)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn oneof_and_vec_compose(
            v in prop::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 0..20),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
