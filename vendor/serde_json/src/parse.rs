//! Recursive-descent JSON parser producing a [`Value`] tree.

use crate::{Map, Number, Value};
use serde::Error;

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(out)),
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(out)),
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a \uXXXX low surrogate must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::custom("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::custom("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes are
                    // valid; reassemble the char.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        let n = if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                // Parse the magnitude and negate so `-0` normalizes.
                stripped.parse::<i64>().ok().map(|m| Number::from(-m))
            } else {
                text.parse::<u64>().ok().map(Number::PosInt)
            }
            .or_else(|| text.parse::<f64>().ok().map(Number::Float))
        } else {
            text.parse::<f64>().ok().map(Number::Float)
        };
        n.map(Value::Number)
            .ok_or_else(|| Error::custom(format!("invalid number `{text}`")))
    }
}
