//! Minimal, offline-friendly reimplementation of the `serde_json` surface
//! used by the cestim workspace: [`Value`] (re-exported from the vendored
//! `serde`), `to_string` / `to_string_pretty` / `to_writer`, `from_str` /
//! `from_slice`, and the [`json!`] macro.

mod parse;

use std::fmt;
use std::io::{self, Write};

pub use serde::{to_value, Map, Number, Value};

/// Error from JSON serialization or deserialization.
#[derive(Debug)]
pub enum Error {
    /// Parse or shape mismatch.
    Data(serde::Error),
    /// I/O failure from `to_writer`.
    Io(io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Data(e) => e.fmt(f),
            Error::Io(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::Data(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> io::Error {
        match e {
            Error::Io(e) => e,
            Error::Data(e) => io::Error::new(io::ErrorKind::InvalidData, e),
        }
    }
}

/// `Result` with this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Infallible for this vendored implementation; the `Result` matches the
/// real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serializes to a pretty-printed (2-space indent) JSON string.
///
/// # Errors
///
/// Infallible for this vendored implementation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn to_writer<W: Write, T: serde::Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Serializes to compact JSON bytes.
///
/// # Errors
///
/// Infallible for this vendored implementation.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes any `T: Deserialize` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse::parse(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Deserializes any `T: Deserialize` from JSON bytes.
///
/// # Errors
///
/// Returns an error on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::Data(serde::Error::custom(format!("invalid UTF-8: {e}"))))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like literal syntax (serde_json's `json!`).
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
    () => {
        $crate::Value::Null
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Array munching: accumulate elements in [..].
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Object munching: (@object map (partial key) (unmunched) (copy)).
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // Primary forms.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = json!({
            "a": 1,
            "b": [true, null, 2.5, "x\n\"y\""],
            "c": {"nested": [-3, {"deep": false}]},
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn index_and_eq() {
        let v = json!({"a": 1, "s": "hi", "f": 0.5});
        assert_eq!(v["a"], 1);
        assert_eq!(v["s"], "hi");
        assert_eq!(v["f"], 0.5);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }

    #[test]
    fn malformed_is_an_error() {
        assert!(from_str::<Value>("{not json}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn floats_keep_their_point() {
        assert_eq!(to_string(&json!(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(1)).unwrap(), "1");
        let back: Value = from_str("1.0").unwrap();
        assert_eq!(back, json!(1.0));
    }
}
