//! # cestim — Confidence Estimation for Speculation Control
//!
//! A production-quality Rust reproduction of **Klauser, Grunwald, Manne &
//! Pleszkun, "Confidence Estimation for Speculation Control" (ISCA 1998)**:
//! confidence estimators for branch predictions, the diagnostic-test metric
//! framework used to compare them, and the full pipeline-level simulation
//! stack needed to evaluate them the way the paper does — including
//! wrong-path execution, speculative history, and misprediction-distance
//! analysis.
//!
//! This crate is a facade re-exporting the workspace's layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `cestim-core` | the paper's contribution: [`Quadrant`] metrics (SENS/SPEC/PVP/PVN), estimators ([`Jrs`], [`SaturatingConfidence`], [`PatternHistory`], [`StaticProfile`], [`DistanceEstimator`], [`Boosted`]), diagnostic math |
//! | [`bpred`] | `cestim-bpred` | gshare, McFarling, SAg, bimodal predictors |
//! | [`isa`] | `cestim-isa` | the RISC ISA, program builder, checkpointing interpreter |
//! | [`pipeline`] | `cestim-pipeline` | the speculative pipeline simulator with wrong-path execution and gating |
//! | [`trace`] | `cestim-trace` | distance/clustering analyses and trace serialization |
//! | [`trace_io`] | `cestim-trace-io` | the versioned external branch-trace format (binary + JSONL) and its total importer (see `docs/TRACES.md`) |
//! | [`workloads`] | `cestim-workloads` | the eight SPECint95 analogs |
//! | [`sim`] | `cestim-sim` | experiment specs, runner, and the paper's full table/figure suite |
//!
//! The most common types are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use cestim::{EstimatorSpec, PredictorKind, RunConfig, WorkloadKind};
//!
//! // Run the paper's estimator set on one workload with a gshare pipeline.
//! let cfg = RunConfig::paper(WorkloadKind::Compress, 1, PredictorKind::Gshare);
//! let out = cestim::run(&cfg, &EstimatorSpec::paper_set(PredictorKind::Gshare));
//! for e in &out.estimators {
//!     let q = e.quadrants.committed;
//!     println!(
//!         "{:24} sens={:.2} spec={:.2} pvp={:.2} pvn={:.2}",
//!         e.name, q.sens(), q.spec(), q.pvp(), q.pvn()
//!     );
//! }
//! ```
//!
//! Regenerate every table and figure of the paper with the `repro` binary:
//!
//! ```text
//! cargo run --release -p cestim-bench --bin repro -- all
//! ```

#![warn(missing_docs)]

pub use cestim_bpred as bpred;
pub use cestim_core as core;
pub use cestim_isa as isa;
pub use cestim_pipeline as pipeline;
pub use cestim_sim as sim;
pub use cestim_trace as trace;
pub use cestim_trace_io as trace_io;
pub use cestim_workloads as workloads;

pub use cestim_bpred::{Bimodal, BranchPredictor, Gshare, McFarling, Prediction, SAg};
pub use cestim_core::{
    Boosted, Confidence, ConfidenceEstimator, DistanceEstimator, Jrs, MetricSummary,
    PatternHistory, ProfileCollector, Quadrant, SaturatingConfidence, SaturatingVariant,
    StaticProfile,
};
pub use cestim_isa::{Machine, Program, ProgramBuilder, Reg};
pub use cestim_pipeline::{PipelineConfig, PipelineStats, SimObserver, Simulator, TraceSimulator};
pub use cestim_sim::{
    apps, capture_live_trace, collect_profile, conformance_specs, export_config_trace, run,
    run_replay_live, run_trace, run_with_observer, run_with_profile, EstimatorSpec, PredictorKind,
    RunConfig, RunOutcome,
};
pub use cestim_trace::{ClusterAnalysis, DistanceAnalysis, DistanceSeries};
pub use cestim_trace_io::{TraceRecord, TRACE_VERSION};
pub use cestim_workloads::{Workload, WorkloadKind};
