//! `cestim` — command-line front end for the simulator.
//!
//! ```text
//! cestim run [--workload NAME | --asm FILE] [--predictor P] [--scale N]
//!            [--estimator SPEC]... [--gate N] [--json]
//! cestim disasm (--workload NAME | --asm FILE)
//! cestim workloads
//! cestim estimators
//! ```
//!
//! Estimator SPEC grammar (see `EstimatorSpec::from_str`): `jrs`,
//! `jrs:bits=10:t=8:base`, `satctr[:both|:either]`, `pattern:13`,
//! `static:0.9`, `distance:3`, `cir:w=16:t=14`, `jrsmcf:t=15`,
//! `tuned-spec:0.9`, `tuned-pvn:0.3`, `boost:2:satctr`, `always-low`.

use cestim::{
    EstimatorSpec, PipelineConfig, PredictorKind, Program, RunConfig, Simulator, WorkloadKind,
};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  cestim run [--workload NAME | --asm FILE] [--predictor P] [--scale N]\n\
         \x20            [--estimator SPEC]... [--gate N] [--json]\n  \
         cestim disasm (--workload NAME | --asm FILE)\n  \
         cestim workloads\n  cestim estimators"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

struct RunArgs {
    workload: Option<WorkloadKind>,
    asm: Option<String>,
    predictor: PredictorKind,
    scale: u32,
    estimators: Vec<EstimatorSpec>,
    gate: Option<u32>,
    json: bool,
}

fn parse_run_args(mut argv: impl Iterator<Item = String>) -> RunArgs {
    let mut args = RunArgs {
        workload: None,
        asm: None,
        predictor: PredictorKind::Gshare,
        scale: 1,
        estimators: Vec::new(),
        gate: None,
        json: false,
    };
    while let Some(a) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" => {
                let v = value();
                args.workload = Some(WorkloadKind::from_name(&v).unwrap_or_else(|| {
                    fail(format!("unknown workload '{v}' (try `cestim workloads`)"))
                }));
            }
            "--asm" => args.asm = Some(value()),
            "--predictor" => {
                let v = value();
                args.predictor = PredictorKind::from_name(&v)
                    .unwrap_or_else(|| fail(format!("unknown predictor '{v}'")));
            }
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--estimator" => {
                let v = value();
                args.estimators.push(v.parse().unwrap_or_else(|e| fail(e)));
            }
            "--gate" => args.gate = Some(value().parse().unwrap_or_else(|_| usage())),
            "--json" => args.json = true,
            _ => usage(),
        }
    }
    args
}

fn load_program(
    workload: Option<WorkloadKind>,
    asm: &Option<String>,
    scale: u32,
) -> (String, Program) {
    match (workload, asm) {
        (Some(w), None) => (w.name().to_string(), w.build(scale).program),
        (None, Some(path)) => {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            let prog = cestim::isa::parse_asm(&src).unwrap_or_else(|e| fail(e));
            (path.clone(), prog)
        }
        _ => fail("exactly one of --workload or --asm is required"),
    }
}

fn cmd_run(argv: impl Iterator<Item = String>) -> ExitCode {
    let args = parse_run_args(argv);
    let (name, program) = load_program(args.workload, &args.asm, args.scale);

    // Assembly programs run the pipeline directly (no profiling pass), so
    // profile-needing estimators are only supported for named workloads.
    if args.asm.is_some() && args.estimators.iter().any(EstimatorSpec::needs_profile) {
        fail("profile-based estimators (static/tuned) need --workload, not --asm");
    }

    let mut pipeline = PipelineConfig::paper();
    if let Some(g) = args.gate {
        pipeline.gate_threshold = Some(g);
    }

    let out = if let Some(w) = args.workload {
        let cfg = RunConfig {
            workload: w,
            scale: args.scale,
            input_salt: 0,
            predictor: args.predictor,
            pipeline,
        };
        cestim::run(&cfg, &args.estimators)
    } else {
        let mut sim = Simulator::new(&program, pipeline, args.predictor.build_any());
        for spec in &args.estimators {
            sim.add_estimator(spec.build_any(None));
        }
        let stats = sim.run_to_completion();
        cestim::RunOutcome {
            stats,
            estimators: args
                .estimators
                .iter()
                .zip(sim.estimator_quadrants())
                .map(|(s, &quadrants)| cestim::sim::EstimatorResult {
                    name: s.label(),
                    quadrants,
                })
                .collect(),
        }
    };

    if args.json {
        let v = serde_json::json!({
            "program": name,
            "predictor": args.predictor.name(),
            "stats": out.stats,
            "estimators": out.estimators,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&v).expect("serializable")
        );
        return ExitCode::SUCCESS;
    }

    let s = &out.stats;
    println!("program: {name}   predictor: {}", args.predictor.name());
    println!(
        "cycles {}  committed {} (IPC {:.2})  fetched {} ({:.2}x)  recoveries {}",
        s.cycles,
        s.committed_insts,
        s.ipc(),
        s.fetched_insts,
        s.speculation_ratio(),
        s.recoveries
    );
    println!(
        "branches: {} committed, accuracy {:.2}% ({} squashed)",
        s.committed_branches,
        s.accuracy_committed() * 100.0,
        s.squashed_branches
    );
    if s.gated_cycles > 0 {
        println!("gating: {} gated cycles", s.gated_cycles);
    }
    for e in &out.estimators {
        let q = e.quadrants.committed;
        let p = cestim::sim::pct;
        println!(
            "  {:28} sens {:>6}  spec {:>6}  pvp {:>6}  pvn {:>6}",
            e.name,
            p(q.sens()),
            p(q.spec()),
            p(q.pvp()),
            p(q.pvn())
        );
    }
    ExitCode::SUCCESS
}

fn cmd_disasm(argv: impl Iterator<Item = String>) -> ExitCode {
    let args = parse_run_args(argv);
    let (name, program) = load_program(args.workload, &args.asm, args.scale);
    println!("; {} — {} instructions", name, program.len());
    print!("{}", program.disasm());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("run") => cmd_run(argv),
        Some("disasm") => cmd_disasm(argv),
        Some("workloads") => {
            for k in WorkloadKind::all() {
                println!("{:10} {}", k.name(), k.build(1).description);
            }
            ExitCode::SUCCESS
        }
        Some("estimators") => {
            println!(
                "jrs[:bits=N][:t=N][:base]\nsatctr[:both|:either]\npattern:WIDTH\n\
                 static:THRESHOLD\ndistance:N\ncir[:bits=N][:w=N][:t=N]\n\
                 jrsmcf[:bits=N][:t=N]\ntuned-spec:V\ntuned-pvn:V\nboost:K:INNER\n\
                 always-high\nalways-low"
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
