//! Speculation control for power: pipeline gating driven by confidence.
//!
//! The paper's companion application (Manne et al., "Pipeline Gating")
//! stalls instruction fetch while too many low-confidence branches are in
//! flight, trading a little performance for a large cut in wasted
//! (wrong-path) work. This example sweeps the gating threshold for two
//! estimators and reports the trade-off the architecture actually sees.
//!
//! ```text
//! cargo run --release --example pipeline_gating [workload] [scale]
//! ```

use cestim::sim::apps::gating_sweep;
use cestim::sim::SatVariantSpec;
use cestim::{EstimatorSpec, PredictorKind, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = args
        .next()
        .and_then(|n| WorkloadKind::from_name(&n))
        .unwrap_or(WorkloadKind::Go);
    let scale = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let estimators = [
        (
            "satctr (free, high PVN)",
            EstimatorSpec::SatCtr {
                variant: SatVariantSpec::Selected,
            },
        ),
        ("jrs enhanced (high SPEC)", EstimatorSpec::jrs_paper()),
        (
            "distance>3 (one counter)",
            EstimatorSpec::Distance { threshold: 3 },
        ),
    ];

    println!(
        "pipeline gating on `{workload}` (scale {scale}, gshare): stall fetch while >= N \
         low-confidence branches are outstanding\n"
    );
    println!(
        "{:26} {:>6} {:>14} {:>12} {:>10}",
        "estimator", "gate N", "wrong-path", "slowdown", "gated cyc"
    );
    for (label, spec) in &estimators {
        let pts = gating_sweep(workload, scale, PredictorKind::Gshare, spec, &[1, 2, 4]);
        let base = pts[0].stats;
        println!(
            "{:26} {:>6} {:>13}% {:>11}x {:>10}",
            label, "off", 100, 1.0, base.gated_cycles
        );
        for p in &pts[1..] {
            println!(
                "{:26} {:>6} {:>13.0}% {:>11.3}x {:>10}",
                "",
                p.threshold.unwrap(),
                p.extra_work_ratio(&base) * 100.0,
                p.slowdown(&base),
                p.stats.gated_cycles
            );
        }
        println!();
    }
    println!(
        "Lower wrong-path % = energy saved on work that would be thrown away; \
         slowdown near 1.0x means the gate rarely blocked useful fetch. A good \
         estimator (high SPEC, decent PVN) moves the frontier toward the \
         bottom-left."
    );
}
