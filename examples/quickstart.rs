//! Quickstart: attach the paper's confidence estimators to a gshare
//! pipeline, run one synthetic SPECint95 analog, and print the 2×2
//! confidence/outcome tables with the four diagnostic metrics.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [scale]
//! ```

use cestim::{pipeline::EstimatorQuadrants, EstimatorSpec, PredictorKind, RunConfig, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = args
        .next()
        .and_then(|n| WorkloadKind::from_name(&n))
        .unwrap_or(WorkloadKind::Compress);
    let scale = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    println!("workload: {workload} (scale {scale}), predictor: gshare (paper config)\n");
    let cfg = RunConfig::paper(workload, scale, PredictorKind::Gshare);
    let specs = EstimatorSpec::paper_set(PredictorKind::Gshare);
    let out = cestim::run(&cfg, &specs);

    let s = &out.stats;
    println!(
        "pipeline: {} cycles, {} committed insts (IPC {:.2}), {} fetched ({:.2}x speculation)",
        s.cycles,
        s.committed_insts,
        s.ipc(),
        s.fetched_insts,
        s.speculation_ratio()
    );
    println!(
        "branches: {} committed, accuracy {:.1}% ({} recoveries)\n",
        s.committed_branches,
        s.accuracy_committed() * 100.0,
        s.recoveries
    );

    for e in &out.estimators {
        let EstimatorQuadrants { committed: q, .. } = e.quadrants;
        println!("--- {} (committed branches) ---", e.name);
        println!("{q}");
        println!(
            "  SENS {:5.1}%  (correct predictions marked high-confidence)",
            q.sens() * 100.0
        );
        println!(
            "  SPEC {:5.1}%  (mispredictions caught as low-confidence)",
            q.spec() * 100.0
        );
        println!(
            "  PVP  {:5.1}%  (a high-confidence estimate is right this often)",
            q.pvp() * 100.0
        );
        println!(
            "  PVN  {:5.1}%  (a low-confidence estimate is right this often)\n",
            q.pvn() * 100.0
        );
    }
    println!(
        "Reading the table: speculation control wants high SPEC and PVN \
         (catch mispredictions without crying wolf); bandwidth-style uses \
         want high SENS and PVP. See the paper's §2.2 or `examples/smt_fetch.rs`."
    );
}
