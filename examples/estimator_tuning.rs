//! Picking an operating point: sweep the JRS design space and print the
//! PVP/PVN frontier (the data behind the paper's Figures 3–5).
//!
//! One pipeline pass evaluates the whole sweep: the simulator supports a
//! bank of estimators, each seeing the same predictions.
//!
//! ```text
//! cargo run --release --example estimator_tuning [workload] [scale]
//! ```

use cestim::{EstimatorSpec, PredictorKind, RunConfig, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = args
        .next()
        .and_then(|n| WorkloadKind::from_name(&n))
        .unwrap_or(WorkloadKind::Gcc);
    let scale = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    // 4 table sizes x 16 thresholds, all enhanced-index JRS.
    let sizes = [6u32, 8, 10, 12];
    let mut specs = Vec::new();
    for &bits in &sizes {
        for t in 1..=16u8 {
            specs.push(EstimatorSpec::Jrs {
                index_bits: bits,
                threshold: t,
                enhanced: true,
            });
        }
    }
    let cfg = RunConfig::paper(workload, scale, PredictorKind::Gshare);
    let out = cestim::run(&cfg, &specs);

    println!(
        "JRS design space on `{workload}` (gshare, scale {scale}): {} configurations in one pass\n",
        specs.len()
    );
    for (si, &bits) in sizes.iter().enumerate() {
        println!("{} MDC entries:", 1u32 << bits);
        println!(
            "  {:>4} {:>8} {:>8} {:>8} {:>8}",
            "t", "sens", "spec", "pvp", "pvn"
        );
        for t in 0..16usize {
            let q = out.estimators[si * 16 + t].quadrants.committed;
            println!(
                "  {:>4} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                t + 1,
                q.sens() * 100.0,
                q.spec() * 100.0,
                q.pvp() * 100.0,
                q.pvn() * 100.0
            );
        }
        println!();
    }

    // Suggest operating points for the two application families.
    let best = |score: &dyn Fn(&cestim::Quadrant) -> f64| {
        out.estimators
            .iter()
            .max_by(|a, b| {
                score(&a.quadrants.committed)
                    .partial_cmp(&score(&b.quadrants.committed))
                    .unwrap()
            })
            .unwrap()
    };
    // Speculation control: maximize SPEC subject to PVN at least 60% of max.
    let max_pvn = out
        .estimators
        .iter()
        .map(|e| e.quadrants.committed.pvn())
        .fold(0.0f64, f64::max);
    let gating = best(&|q| {
        if q.pvn() >= 0.6 * max_pvn {
            q.spec()
        } else {
            f64::NEG_INFINITY
        }
    });
    let bandwidth = best(&|q| q.sens() * q.pvp());
    println!(
        "suggested operating points:\n  speculation control (SPEC with viable PVN): {}\n  bandwidth multithreading (SENS x PVP):      {}",
        gating.name, bandwidth.name
    );
}
