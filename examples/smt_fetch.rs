//! SMT fetch policies, measured on a real two-thread SMT front end.
//!
//! The paper's §1 motivation: "if a particular branch in a Simultaneous
//! Multithreading processor is of low confidence, it may be more cost
//! effective to switch threads than speculatively evaluate the branch."
//!
//! Part 1 runs a hard-to-predict thread (`go`) against a predictable one
//! (`ijpeg`) on the [`SmtSimulator`]'s shared fetch port under four
//! arbitration policies, measuring combined throughput and wasted fetch.
//!
//! Part 2 scores individual estimators analytically for the two
//! multithreading styles of §2.2 (switch-on-LC wants PVN/SPEC; bandwidth
//! multithreading wants SENS/PVP), including boosted variants.
//!
//! ```text
//! cargo run --release --example smt_fetch [scale]
//! ```

use cestim::pipeline::{FetchPolicy, SmtSimulator};
use cestim::sim::apps::{bandwidth_figures, smt_figures};
use cestim::sim::SatVariantSpec;
use cestim::{
    EstimatorSpec, PipelineConfig, PredictorKind, Quadrant, RunConfig, SaturatingConfidence,
    Simulator, WorkloadKind,
};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    // ---- Part 1: a real SMT front end ------------------------------------
    let noisy = WorkloadKind::Go.build(scale);
    let steady = WorkloadKind::Ijpeg.build(scale);
    let mk_thread = |p| {
        let mut s = Simulator::new(p, PipelineConfig::paper(), PredictorKind::Gshare.build());
        s.add_estimator(Box::new(SaturatingConfidence::selected()));
        s
    };

    println!("two-thread SMT: go (hard) + ijpeg (predictable), gshare, scale {scale}\n");
    println!(
        "{:20} {:>10} {:>12} {:>12} {:>12}",
        "policy", "cycles", "combined IPC", "squashed", "waste %"
    );
    for policy in [
        FetchPolicy::RoundRobin,
        FetchPolicy::FewestOutstanding,
        FetchPolicy::SwitchOnLowConfidence,
        FetchPolicy::FewestLowConfidence,
    ] {
        let threads = vec![mk_thread(&noisy.program), mk_thread(&steady.program)];
        let mut smt = SmtSimulator::new(threads, policy);
        let stats = smt.run(u64::MAX);
        let fetched: u64 = stats.per_thread.iter().map(|t| t.fetched_insts).sum();
        println!(
            "{:20} {:>10} {:>12.2} {:>12} {:>11.1}%",
            policy.name(),
            stats.cycles,
            stats.throughput(),
            stats.total_squashed(),
            stats.total_squashed() as f64 / fetched as f64 * 100.0
        );
    }
    println!(
        "\nConfidence-aware policies steer the shared port away from threads\n\
         that are likely speculating down a wrong path, cutting wasted fetch\n\
         (the paper's speculation-control thesis applied to SMT).\n"
    );

    // ---- Part 2: estimator scoring for the two §2.2 policies -------------
    let satctr = EstimatorSpec::SatCtr {
        variant: SatVariantSpec::Selected,
    };
    let specs = vec![
        EstimatorSpec::jrs_paper(),
        satctr.clone(),
        EstimatorSpec::Boosted {
            inner: Box::new(satctr.clone()),
            k: 2,
        },
        EstimatorSpec::Static { threshold: 0.9 },
        EstimatorSpec::Distance { threshold: 2 },
    ];
    let mut totals: Vec<Quadrant> = vec![Quadrant::default(); specs.len()];
    for w in WorkloadKind::all() {
        let out = cestim::run(&RunConfig::paper(w, scale, PredictorKind::Gshare), &specs);
        for (t, e) in totals.iter_mut().zip(&out.estimators) {
            *t += e.quadrants.committed;
        }
    }
    println!("estimator scoring for the two §2.2 policies (all workloads):\n");
    println!(
        "{:26} | {:>8} {:>9} {:>8} | {:>9} {:>9}",
        "estimator", "switch%", "justified", "caught", "retained", "efficient"
    );
    for (spec, q) in specs.iter().zip(&totals) {
        let s = smt_figures(q);
        let b = bandwidth_figures(q);
        println!(
            "{:26} | {:>7.1}% {:>8.1}% {:>7.1}% | {:>8.1}% {:>8.1}%",
            spec.label(),
            s.switch_rate * 100.0,
            s.useful_switch_rate * 100.0,
            s.covered_mispredictions * 100.0,
            b.retained_fetch * 100.0,
            b.fetch_efficiency * 100.0
        );
    }
    println!(
        "\nswitch% = thread yields; justified = PVN; caught = SPEC;\n\
         retained = SENS (bandwidth style); efficient = PVP."
    );
}
