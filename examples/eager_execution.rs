//! Eager (dual-path) execution policy study.
//!
//! An eager-execution machine forks down both paths of a low-confidence
//! branch: every *covered* misprediction avoids a full recovery, but every
//! fork on a correctly predicted branch wastes half the machine. The paper
//! (§2.2) argues this application is driven by SPEC (how many
//! mispredictions get covered) and PVN (how many forks are justified).
//!
//! This example measures both for each estimator across all workloads, and
//! prices the policy with a simple cost model.
//!
//! ```text
//! cargo run --release --example eager_execution [scale]
//! ```

use cestim::sim::apps::{eager_figures, EagerFigures};
use cestim::sim::SatVariantSpec;
use cestim::{EstimatorSpec, PipelineConfig, PredictorKind, Quadrant, RunConfig, WorkloadKind};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    // ---- Part 1: the real dual-path mechanism in the pipeline ------------
    println!("dual-path execution in the pipeline (gshare + satctr fork trigger)\n");
    println!(
        "{:10} {:>12} {:>12} {:>8} {:>9} {:>10}",
        "workload", "base cyc", "eager cyc", "speedup", "forks", "covered"
    );
    for w in [WorkloadKind::Go, WorkloadKind::Gcc, WorkloadKind::Compress] {
        let spec = EstimatorSpec::SatCtr {
            variant: SatVariantSpec::Selected,
        };
        let base = cestim::run(
            &RunConfig::paper(w, scale, PredictorKind::Gshare),
            std::slice::from_ref(&spec),
        )
        .stats;
        let eager = cestim::run(
            &RunConfig {
                pipeline: PipelineConfig::paper().with_eager(1),
                ..RunConfig::paper(w, scale, PredictorKind::Gshare)
            },
            std::slice::from_ref(&spec),
        )
        .stats;
        println!(
            "{:10} {:>12} {:>12} {:>7.3}x {:>9} {:>9.1}%",
            w.name(),
            base.cycles,
            eager.cycles,
            base.cycles as f64 / eager.cycles as f64,
            eager.eager_forks,
            eager.eager_covered as f64 / eager.eager_forks as f64 * 100.0
        );
    }
    println!(
        "\nspeedup > 1 means covered mispredictions (penalty waived) outweigh\n\
         the halved fetch width while forks are active; `covered` is the\n\
         fork hit rate — the estimator's PVN at the fork trigger.\n"
    );

    // ---- Part 2: analytic policy scoring ----------------------------------
    let specs = vec![
        EstimatorSpec::jrs_paper(),
        EstimatorSpec::SatCtr {
            variant: SatVariantSpec::Selected,
        },
        EstimatorSpec::Static { threshold: 0.9 },
        EstimatorSpec::Distance { threshold: 3 },
        EstimatorSpec::AlwaysLow, // fork everything: the upper bound on coverage
    ];

    // Aggregate committed quadrants across all workloads.
    let mut totals: Vec<Quadrant> = vec![Quadrant::default(); specs.len()];
    for w in WorkloadKind::all() {
        let out = cestim::run(&RunConfig::paper(w, scale, PredictorKind::Gshare), &specs);
        for (t, e) in totals.iter_mut().zip(&out.estimators) {
            *t += e.quadrants.committed;
        }
    }

    println!("eager execution on gshare, all 8 workloads (scale {scale})\n");
    println!(
        "{:24} {:>10} {:>10} {:>10} {:>12}",
        "estimator", "fork rate", "coverage", "wasted", "net benefit"
    );
    for (spec, q) in specs.iter().zip(&totals) {
        let EagerFigures {
            fork_rate,
            covered_mispredictions,
            wasted_forks,
        } = eager_figures(q);
        // Toy cost model: a covered misprediction saves ~6 cycles of
        // recovery; a fork costs ~1 cycle of fetch bandwidth either way.
        let mispredict_rate = q.misprediction_rate();
        let saved = covered_mispredictions * mispredict_rate * 6.0;
        let cost = fork_rate * 1.0;
        println!(
            "{:24} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.3}",
            spec.label(),
            fork_rate * 100.0,
            covered_mispredictions * 100.0,
            wasted_forks * 100.0,
            saved - cost
        );
    }
    println!(
        "\nfork rate   = branches that dual-path (the machine cost)\n\
         coverage    = SPEC: mispredictions that had a fork ready\n\
         wasted      = 1 - PVN: forks spent on branches that were fine\n\
         net benefit = cycles saved per branch under the toy cost model\n\
         Forking everything (always-low) maximizes coverage but the waste\n\
         makes it a net loss — which is exactly why eager execution needs a\n\
         confidence estimator."
    );
}
